// Cross-simulator integration tests: the paper-level claims that the test
// suite can check cheaply (small scaled-down versions of Exp 1-3).
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "exp/presets.hpp"
#include "exp/runners.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace pcs::exp {
namespace {

using namespace pcs::workload;

using util::GB;

RunConfig base_config(SimulatorKind kind) {
  RunConfig config;
  config.kind = kind;
  config.input_size = 20.0 * GB;
  config.chunk_size = 100.0 * util::MB;
  return config;
}

double phase_error_pct(const RunResult& sim, const RunResult& ref) {
  // Mean absolute relative error over the six synthetic phases, skipping
  // Read 1 (cold for everyone, near-exact by construction).
  double total = 0.0;
  int count = 0;
  for (int step = 1; step <= kSyntheticTasks; ++step) {
    if (step > 1) {
      total += util::absolute_relative_error_pct(sim.read_time(0, step), ref.read_time(0, step));
      ++count;
    }
    total += util::absolute_relative_error_pct(sim.write_time(0, step), ref.write_time(0, step));
    ++count;
  }
  return total / count;
}

TEST(Integration, CacheModelReducesErrorByALot) {
  RunResult ref = run_experiment(base_config(SimulatorKind::Reference));
  RunResult wrench = run_experiment(base_config(SimulatorKind::Wrench));
  RunResult cache = run_experiment(base_config(SimulatorKind::WrenchCache));

  double wrench_err = phase_error_pct(wrench, ref);
  double cache_err = phase_error_pct(cache, ref);
  // The paper reports 345% -> 39% (20/100 GB single-threaded).  We only
  // require the qualitative claim: a large reduction.
  EXPECT_GT(wrench_err, 100.0) << "cacheless baseline should be far off";
  EXPECT_LT(cache_err, wrench_err / 2.0);
  EXPECT_LT(cache_err, 60.0);
}

TEST(Integration, FirstReadIsAccurateForEveryone) {
  RunResult ref = run_experiment(base_config(SimulatorKind::Reference));
  RunResult wrench = run_experiment(base_config(SimulatorKind::Wrench));
  RunResult cache = run_experiment(base_config(SimulatorKind::WrenchCache));
  // Read 1 is uncached in reality and in every model; errors come only from
  // the symmetric-bandwidth approximation (465 vs 510 MBps ~ 10%).
  double e_wrench =
      util::absolute_relative_error_pct(wrench.read_time(0, 1), ref.read_time(0, 1));
  double e_cache = util::absolute_relative_error_pct(cache.read_time(0, 1), ref.read_time(0, 1));
  EXPECT_LT(e_wrench, 15.0);
  EXPECT_LT(e_cache, 15.0);
}

TEST(Integration, WrenchCacheMatchesPrototypeOnSequentialRun) {
  // The paper: "The Python prototype and WRENCH-cache exhibited nearly
  // identical memory profiles, which reinforces the confidence in our
  // implementations."  Phase times must agree closely too.
  RunConfig config = base_config(SimulatorKind::WrenchCache);
  RunResult engine_run = run_experiment(config);
  config.kind = SimulatorKind::Prototype;
  RunResult proto_run = run_experiment(config);

  for (int step = 1; step <= kSyntheticTasks; ++step) {
    EXPECT_NEAR(engine_run.read_time(0, step), proto_run.read_time(0, step),
                0.15 * proto_run.read_time(0, step) + 2.0)
        << "read " << step;
    EXPECT_NEAR(engine_run.write_time(0, step), proto_run.write_time(0, step),
                0.15 * proto_run.write_time(0, step) + 2.0)
        << "write " << step;
  }
}

TEST(Integration, WarmReadsHitTheCache) {
  RunResult cache = run_experiment(base_config(SimulatorKind::WrenchCache));
  // Read 2 and Read 3 consume files written by the previous task: they must
  // be served from memory, an order of magnitude faster than Read 1.
  EXPECT_LT(cache.read_time(0, 2), cache.read_time(0, 1) / 5.0);
  EXPECT_LT(cache.read_time(0, 3), cache.read_time(0, 1) / 5.0);
}

TEST(Integration, MemoryProfileConservesBytes) {
  RunConfig config = base_config(SimulatorKind::WrenchCache);
  config.probe_period = 5.0;
  RunResult result = run_experiment(config);
  ASSERT_FALSE(result.profile.empty());
  for (const cache::CacheSnapshot& s : result.profile) {
    EXPECT_NEAR(s.free + s.cached + s.anonymous, s.total, 1.0);
    EXPECT_GE(s.free, -1.0);
    EXPECT_LE(s.dirty, 0.2 * s.total + config.chunk_size + 1.0);
    EXPECT_NEAR(s.inactive + s.active, s.cached, 1.0);
  }
}

TEST(Integration, CacheContentsAfterRunHoldRecentFiles) {
  // 20 GB inputs: all four files fit in the 250 GB node; at the end the
  // last written file must be fully cached (Fig 4c, 20 GB panel).
  RunConfig config = base_config(SimulatorKind::WrenchCache);
  config.probe_period = 5.0;
  RunResult result = run_experiment(config);
  const cache::CacheSnapshot& last = result.profile.back();
  const std::string f4 = instance_prefix(0) + "file4";
  ASSERT_TRUE(last.per_file.count(f4) != 0);
  EXPECT_NEAR(last.per_file.at(f4), config.input_size, 0.01 * config.input_size);
}

TEST(Integration, ConcurrentInstancesCacheBeatsBaseline) {
  RunConfig config = base_config(SimulatorKind::Wrench);
  config.input_size = 3.0 * GB;
  config.instances = 4;
  RunResult wrench = run_experiment(config);
  config.kind = SimulatorKind::WrenchCache;
  RunResult cache = run_experiment(config);
  config.kind = SimulatorKind::Reference;
  RunResult ref = run_experiment(config);

  // Reads: baseline pays disk for every byte; the cache model and the
  // reference serve re-reads from memory.  (The shared cold first read
  // bounds the achievable ratio near 3x.)
  EXPECT_GT(wrench.mean_instance_read_time(), 2.0 * cache.mean_instance_read_time());
  // And the cache model lands nearer the reference than the baseline does.
  double err_cache = util::absolute_relative_error_pct(cache.mean_instance_read_time(),
                                                       ref.mean_instance_read_time());
  double err_wrench = util::absolute_relative_error_pct(wrench.mean_instance_read_time(),
                                                        ref.mean_instance_read_time());
  EXPECT_LT(err_cache, err_wrench);
}

TEST(Integration, NfsReadsBenefitFromCaches) {
  RunConfig config = base_config(SimulatorKind::Wrench);
  config.nfs = true;
  config.input_size = 3.0 * GB;
  config.instances = 2;
  RunResult wrench = run_experiment(config);
  config.kind = SimulatorKind::WrenchCache;
  RunResult cache = run_experiment(config);
  EXPECT_GT(wrench.mean_instance_read_time(), 2.0 * cache.mean_instance_read_time());
  // Writes go at disk bandwidth for both (writethrough server, no client
  // write cache): they must be close.
  EXPECT_NEAR(cache.mean_instance_write_time(), wrench.mean_instance_write_time(),
              0.1 * wrench.mean_instance_write_time());
}

TEST(Integration, NighresCacheModelBeatsBaseline) {
  RunConfig config = base_config(SimulatorKind::Reference);
  config.app = AppKind::Nighres;
  RunResult ref = run_experiment(config);
  config.kind = SimulatorKind::Wrench;
  RunResult wrench = run_experiment(config);
  config.kind = SimulatorKind::WrenchCache;
  RunResult cache = run_experiment(config);

  auto mean_error = [&](const RunResult& sim) {
    const auto& steps = nighres_table();
    double total = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const std::string name = instance_prefix(0) + steps[i].name;
      if (i > 0) {  // Read 1 is cold for everyone
        total += util::absolute_relative_error_pct(sim.task(name).read_time(),
                                                   ref.task(name).read_time());
        ++count;
      }
      total += util::absolute_relative_error_pct(sim.task(name).write_time(),
                                                 ref.task(name).write_time());
      ++count;
    }
    return total / count;
  };
  EXPECT_LT(mean_error(cache), mean_error(wrench) / 2.0);
}

TEST(Integration, PrototypeRejectsUnsupportedConfigs) {
  RunConfig config = base_config(SimulatorKind::Prototype);
  config.nfs = true;
  EXPECT_THROW(run_experiment(config), std::runtime_error);
  config.nfs = false;
  config.instances = 2;
  EXPECT_THROW(run_experiment(config), std::runtime_error);
  config.instances = 1;
  config.app = AppKind::Nighres;
  EXPECT_THROW(run_experiment(config), std::runtime_error);
}

TEST(Integration, AsymmetricBandwidthAblationImprovesReads) {
  // The paper's conclusion: asymmetric disk bandwidths in SimGrid "will
  // further improve these results".  Forcing the real asymmetric bandwidths
  // into WRENCH-cache must reduce the Read 1 error (465 vs 510 MBps).
  RunResult ref = run_experiment(base_config(SimulatorKind::Reference));
  RunConfig sym = base_config(SimulatorKind::WrenchCache);
  RunResult cache_sym = run_experiment(sym);
  RunConfig asym = sym;
  asym.bandwidth_override = BandwidthMode::RealAsymmetric;
  RunResult cache_asym = run_experiment(asym);

  double err_sym =
      util::absolute_relative_error_pct(cache_sym.read_time(0, 1), ref.read_time(0, 1));
  double err_asym =
      util::absolute_relative_error_pct(cache_asym.read_time(0, 1), ref.read_time(0, 1));
  EXPECT_LT(err_asym, err_sym);
  EXPECT_LT(err_asym, 2.0);  // same bandwidths -> near-exact cold read
}

}  // namespace
}  // namespace pcs::exp
