// Algorithm 2 (chunk reads) and Algorithm 3 (chunk writes) behaviour, with
// hand-computed timings: memory at 100 B/s, disk at 10 B/s, 1000 B RAM.
#include "pagecache/io_controller.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pcs::cache {
namespace {

class IOControllerTest : public ::testing::Test {
 protected:
  IOControllerTest()
      : store_(engine_, 10.0, 10.0),
        mem_read_(engine_.new_resource("mem:rd", 100.0)),
        mem_write_(engine_.new_resource("mem:wr", 100.0)),
        mm_(engine_, params_, 1000.0, mem_read_, mem_write_, store_) {}

  IOController make_io(CacheMode mode) { return IOController(engine_, mode, &mm_, store_); }

  sim::Engine engine_;
  test::FakeStore store_;
  sim::Resource* mem_read_;
  sim::Resource* mem_write_;
  CacheParams params_;
  MemoryManager mm_;
};

TEST_F(IOControllerTest, CachedModesRequireMemoryManager) {
  EXPECT_THROW(IOController(engine_, CacheMode::Writeback, nullptr, store_), CacheError);
  EXPECT_NO_THROW(IOController(engine_, CacheMode::None, nullptr, store_));
}

TEST_F(IOControllerTest, ColdReadComesFromDisk) {
  IOController io = make_io(CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.read_file("f", 100.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // Entirely uncached: 100 B at 10 B/s disk read.
  EXPECT_DOUBLE_EQ(engine_.now(), 10.0);
  EXPECT_DOUBLE_EQ(store_.total_read(), 100.0);
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 100.0);
  EXPECT_DOUBLE_EQ(mm_.anonymous(), 100.0);  // the application's copy
  EXPECT_DOUBLE_EQ(mm_.dirty(), 0.0);
}

TEST_F(IOControllerTest, WarmReadComesFromMemory) {
  IOController io = make_io(CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.read_file("f", 100.0, 50.0);
    mm_.release_anonymous(100.0);
    double t0 = e.now();
    co_await io.read_file("f", 100.0, 50.0);
    // Fully cached: 100 B at 100 B/s memory read = 1 s.
    EXPECT_DOUBLE_EQ(e.now() - t0, 1.0);
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(store_.total_read(), 100.0);  // no second disk read
}

TEST_F(IOControllerTest, PartiallyCachedReadSplitsBetweenDiskAndMemory) {
  IOController io = make_io(CacheMode::Writeback);
  mm_.add_to_cache("f", 60.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    double t0 = e.now();
    co_await io.read_file("f", 100.0, 100.0);
    // Uncached 40 B from disk (4 s) + cached 60 B from memory (0.6 s).
    EXPECT_DOUBLE_EQ(e.now() - t0, 4.6);
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(store_.total_read(), 40.0);
}

TEST_F(IOControllerTest, CachelessReadIsPureDisk) {
  IOController io = make_io(CacheMode::None);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.read_file("f", 100.0, 50.0);
    co_await io.read_file("f", 100.0, 50.0);  // re-read costs the same
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(engine_.now(), 20.0);
  EXPECT_DOUBLE_EQ(store_.total_read(), 200.0);
  EXPECT_DOUBLE_EQ(mm_.cached(), 0.0);
}

TEST_F(IOControllerTest, WritebackBelowDirtyRatioTouchesOnlyMemory) {
  IOController io = make_io(CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    // dirty limit = 0.2 * 1000 = 200 B; write 150 B.
    co_await io.write_file("f", 150.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(engine_.now(), 1.5);  // 150 B at 100 B/s memory write
  EXPECT_TRUE(store_.writes.empty());
  EXPECT_DOUBLE_EQ(mm_.dirty(), 150.0);
}

TEST_F(IOControllerTest, WritebackAboveDirtyRatioFlushes) {
  IOController io = make_io(CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.write_file("f", 500.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // 500 B written; at most 200 B may stay dirty, so at least 300 B hit disk.
  EXPECT_GE(store_.total_written(), 300.0 - 1.0);
  EXPECT_LE(mm_.dirty(), 200.0 + 50.0);  // cap plus one chunk of slack
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 500.0);
}

TEST_F(IOControllerTest, WritethroughGoesToDiskAndCachesClean) {
  IOController io = make_io(CacheMode::Writethrough);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.write_file("f", 100.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(engine_.now(), 10.0);  // disk write at 10 B/s
  EXPECT_DOUBLE_EQ(store_.total_written(), 100.0);
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 100.0);
  EXPECT_DOUBLE_EQ(mm_.dirty(), 0.0);  // clean: already persistent
}

TEST_F(IOControllerTest, ReadCacheModeWritesBypassCache) {
  IOController io = make_io(CacheMode::ReadCache);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.write_file("f", 100.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(store_.total_written(), 100.0);
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 0.0);  // no client write cache
}

TEST_F(IOControllerTest, ReadCacheModeStillCachesReads) {
  IOController io = make_io(CacheMode::ReadCache);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.read_file("f", 100.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 100.0);
}

TEST_F(IOControllerTest, ZeroAndNegativeSizesAreNoops) {
  IOController io = make_io(CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.read_file("f", 0.0, 50.0);
    co_await io.write_file("f", 0.0, 50.0);
    co_await io.write_file("f", -10.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(engine_.now(), 0.0);
  EXPECT_TRUE(store_.reads.empty());
  EXPECT_TRUE(store_.writes.empty());
}

TEST_F(IOControllerTest, ZeroChunkSizeMeansWholeFile) {
  IOController io = make_io(CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.read_file("f", 100.0, 0.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(store_.total_read(), 100.0);
}

TEST_F(IOControllerTest, ReadEvictsToMakeRoom) {
  IOController io = make_io(CacheMode::Writeback);
  mm_.add_to_cache("old", 800.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    // Needs 100 (anon) + 100 (cache) = 200; free is 200, so "old" must
    // partially go only when the accounting demands it.
    co_await io.read_file("new", 100.0, 100.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm_.cached("new"), 100.0);
  EXPECT_DOUBLE_EQ(mm_.anonymous(), 100.0);
  mm_.check_invariants();
}

TEST_F(IOControllerTest, ReadPrefersEvictingOtherFiles) {
  IOController io = make_io(CacheMode::Writeback);
  mm_.add_to_cache("victim", 500.0);
  mm_.add_to_cache("f", 400.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    // Reading 400 B of f in 100 B chunks requires 800 B total (anon+cache
    // already present): eviction must hit "victim", never "f".
    co_await io.read_file("f", 400.0, 100.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 400.0);
  EXPECT_LT(mm_.cached("victim"), 500.0);
}

TEST_F(IOControllerTest, WriterExhaustionThrows) {
  IOController io = make_io(CacheMode::Writeback);
  mm_.allocate_anonymous(1000.0);  // every byte is anonymous: no room at all
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.write_file("f", 500.0, 100.0);
    (void)e;
  };
  engine_.spawn("writer", body(engine_));
  EXPECT_THROW(engine_.run(), CacheError);
}

TEST_F(IOControllerTest, DirtyDataServesSubsequentRead) {
  IOController io = make_io(CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.write_file("f", 100.0, 50.0);
    double t0 = e.now();
    co_await io.read_file("f", 100.0, 50.0);
    // Written data is cached (dirty): read is a pure memory hit.
    EXPECT_DOUBLE_EQ(e.now() - t0, 1.0);
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_TRUE(store_.reads.empty());
}

}  // namespace
}  // namespace pcs::cache
