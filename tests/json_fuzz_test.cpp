// Property test for the JSON layer: randomly generated documents must
// round-trip exactly through dump() -> parse(), compact and pretty.
#include <gtest/gtest.h>

#include <string>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace pcs::util {
namespace {

Json random_value(Rng& rng, int depth) {
  const double roll = rng.next_double();
  if (depth <= 0 || roll < 0.45) {
    // Scalars.
    switch (rng.uniform_int(0, 4)) {
      case 0: return Json(nullptr);
      case 1: return Json(rng.bernoulli(0.5));
      case 2: return Json(static_cast<double>(static_cast<long>(rng.uniform(-1e9, 1e9))));
      case 3: return Json(rng.uniform(-1e6, 1e6));
      default: {
        std::string s;
        const std::size_t len = rng.uniform_int(0, 12);
        for (std::size_t i = 0; i < len; ++i) {
          // Mix printable ASCII with characters that need escaping.
          const char pool[] = "abcXYZ 019_-\"\\\n\t/{}[]:,";
          s += pool[rng.uniform_int(0, sizeof(pool) - 2)];
        }
        return Json(std::move(s));
      }
    }
  }
  if (roll < 0.72) {
    JsonArray arr;
    const std::size_t n = rng.uniform_int(0, 5);
    for (std::size_t i = 0; i < n; ++i) arr.push_back(random_value(rng, depth - 1));
    return Json(std::move(arr));
  }
  JsonObject obj;
  const std::size_t n = rng.uniform_int(0, 5);
  for (std::size_t i = 0; i < n; ++i) {
    obj["key" + std::to_string(rng.uniform_int(0, 20))] = random_value(rng, depth - 1);
  }
  return Json(std::move(obj));
}

class JsonFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzz, DumpParseRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 42);
  for (int doc = 0; doc < 50; ++doc) {
    Json original = random_value(rng, 4);
    const std::string compact = original.dump();
    const std::string pretty = original.dump(2);
    Json from_compact = Json::parse(compact);
    Json from_pretty = Json::parse(pretty);
    ASSERT_TRUE(original == from_compact) << compact;
    ASSERT_TRUE(original == from_pretty) << pretty;
    // Dumping the reparsed value must be byte-identical (determinism).
    ASSERT_EQ(from_compact.dump(), compact);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Range(0, 8));

TEST(JsonFuzz, GarbageNeverCrashes) {
  Rng rng(99);
  for (int doc = 0; doc < 300; ++doc) {
    std::string garbage;
    const std::size_t len = rng.uniform_int(0, 40);
    for (std::size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.uniform_int(1, 127));
    }
    try {
      Json parsed = Json::parse(garbage);
      // Accidentally valid documents must still round-trip.
      Json again = Json::parse(parsed.dump());
      EXPECT_TRUE(parsed == again);
    } catch (const JsonError&) {
      // Expected for almost every input.
    }
  }
}

}  // namespace
}  // namespace pcs::util
