#include "storage/local_storage.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pcs::storage {
namespace {

// Host: 1000 B RAM, memory 100 B/s; disk 10 B/s both ways.
class LocalStorageTest : public ::testing::Test {
 protected:
  LocalStorageTest() {
    host_ = std::make_unique<plat::Host>(engine_, test::small_host("h", 1000.0, 100.0));
    plat::DiskSpec spec;
    spec.name = "d0";
    spec.read_bw = 10.0;
    spec.write_bw = 10.0;
    disk_ = host_->add_disk(engine_, spec);
  }

  sim::Engine engine_;
  std::unique_ptr<plat::Host> host_;
  plat::Disk* disk_ = nullptr;
};

TEST_F(LocalStorageTest, ReadMissingFileThrows) {
  LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.read_file("ghost", 10.0);
    (void)e;
  };
  engine_.spawn("r", body(engine_));
  EXPECT_THROW(engine_.run(), StorageError);
}

TEST_F(LocalStorageTest, StagedFileColdReadTiming) {
  LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  st.stage_file("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.read_file("f", 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(engine_.now(), 10.0);  // 100 B at 10 B/s
  EXPECT_DOUBLE_EQ(st.memory_manager()->cached("f"), 100.0);
}

TEST_F(LocalStorageTest, WriteRegistersFileAndCaches) {
  LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("out", 150.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(st.fs().size_of("out"), 150.0);
  EXPECT_DOUBLE_EQ(st.memory_manager()->dirty(), 150.0);
  EXPECT_DOUBLE_EQ(engine_.now(), 1.5);  // pure memory write
}

TEST_F(LocalStorageTest, CachelessModeHasNoMemoryManager) {
  LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::None);
  EXPECT_EQ(st.memory_manager(), nullptr);
  EXPECT_THROW((void)st.snapshot(), StorageError);
  st.stage_file("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.read_file("f", 50.0);
    co_await st.read_file("f", 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(engine_.now(), 20.0);  // both reads from disk
}

TEST_F(LocalStorageTest, DiskLatencyChargedPerAccess) {
  plat::DiskSpec slow;
  slow.name = "slow";
  slow.read_bw = 10.0;
  slow.write_bw = 10.0;
  slow.latency = 0.5;
  plat::Disk* sdisk = host_->add_disk(engine_, slow);
  LocalStorage st(engine_, *host_, *sdisk, cache::CacheMode::None);
  st.stage_file("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.read_file("f", 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // Two 50 B chunks: each 0.5 s latency + 5 s transfer.
  EXPECT_DOUBLE_EQ(engine_.now(), 11.0);
}

TEST_F(LocalStorageTest, PeriodicFlushDrainsDirtyData) {
  cache::CacheParams params;
  params.dirty_expire = 10.0;
  params.flush_period = 2.0;
  LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback, params);
  st.start_periodic_flush();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("out", 100.0, 50.0);
    co_await e.sleep(30.0);
    EXPECT_DOUBLE_EQ(st.memory_manager()->dirty(), 0.0);
  };
  test::run_actor(engine_, body(engine_));
}

TEST_F(LocalStorageTest, ReleaseAnonymousFlowsThrough) {
  LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  st.stage_file("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.read_file("f", 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(st.memory_manager()->anonymous(), 100.0);
  st.release_anonymous(100.0);
  EXPECT_DOUBLE_EQ(st.memory_manager()->anonymous(), 0.0);
}

TEST_F(LocalStorageTest, FileServiceInterface) {
  LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  FileService* svc = &st;
  svc->stage_file("f", 42.0);
  EXPECT_DOUBLE_EQ(svc->file_size("f"), 42.0);
}

TEST_F(LocalStorageTest, ConcurrentReadersShareDisk) {
  LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::None);
  st.stage_file("a", 100.0);
  st.stage_file("b", 100.0);
  auto reader = [&](sim::Engine& e, const std::string& name) -> sim::Task<> {
    co_await st.read_file(name, 100.0);
    (void)e;
  };
  engine_.spawn("r1", reader(engine_, "a"));
  engine_.spawn("r2", reader(engine_, "b"));
  engine_.run();
  // Two 100 B reads sharing a 10 B/s disk: 20 s.
  EXPECT_DOUBLE_EQ(engine_.now(), 20.0);
}

}  // namespace
}  // namespace pcs::storage
