#include "pagecache/lru_list.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pcs::cache {
namespace {

DataBlock make_block(std::uint64_t id, const std::string& file, double size, double access,
                     bool dirty = false) {
  DataBlock b;
  b.id = id;
  b.file = file;
  b.size = size;
  b.entry_time = access;
  b.last_access = access;
  b.dirty = dirty;
  return b;
}

TEST(LruList, InsertKeepsAccessOrder) {
  LruList list;
  list.insert(make_block(1, "a", 10, 5.0));
  list.insert(make_block(2, "b", 10, 1.0));
  list.insert(make_block(3, "c", 10, 3.0));
  std::vector<std::uint64_t> ids;
  for (const DataBlock& b : list) ids.push_back(b.id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3, 1}));
  list.check_invariants();
}

TEST(LruList, EqualAccessTimesKeepFifo) {
  LruList list;
  list.insert(make_block(1, "a", 10, 2.0));
  list.insert(make_block(2, "b", 10, 2.0));
  list.insert(make_block(3, "c", 10, 2.0));
  std::vector<std::uint64_t> ids;
  for (const DataBlock& b : list) ids.push_back(b.id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(LruList, Accounting) {
  LruList list;
  list.insert(make_block(1, "a", 10, 1.0, /*dirty=*/true));
  list.insert(make_block(2, "a", 20, 2.0));
  list.insert(make_block(3, "b", 5, 3.0, /*dirty=*/true));
  EXPECT_DOUBLE_EQ(list.total(), 35.0);
  EXPECT_DOUBLE_EQ(list.dirty_total(), 15.0);
  EXPECT_DOUBLE_EQ(list.clean_total(), 20.0);
  EXPECT_DOUBLE_EQ(list.file_bytes("a"), 30.0);
  EXPECT_DOUBLE_EQ(list.file_bytes("b"), 5.0);
  EXPECT_DOUBLE_EQ(list.file_bytes("zzz"), 0.0);
  EXPECT_EQ(list.block_count(), 3u);
  list.check_invariants();
}

TEST(LruList, TouchMovesToTail) {
  LruList list;
  list.insert(make_block(1, "a", 10, 1.0));
  list.insert(make_block(2, "b", 10, 2.0));
  list.touch(list.begin(), 9.0);
  EXPECT_EQ(list.begin()->id, 2u);
  EXPECT_EQ(std::next(list.begin())->id, 1u);
  EXPECT_DOUBLE_EQ(std::next(list.begin())->last_access, 9.0);
  list.check_invariants();
}

TEST(LruList, SplitPreservesTotalsAndAttributes) {
  LruList list;
  list.insert(make_block(1, "a", 100, 1.0, /*dirty=*/true));
  auto [head, tail] = list.split(list.begin(), 30.0, 99);
  EXPECT_DOUBLE_EQ(head->size, 30.0);
  EXPECT_DOUBLE_EQ(tail->size, 70.0);
  EXPECT_EQ(head->id, 1u);
  EXPECT_EQ(tail->id, 99u);
  EXPECT_TRUE(head->dirty);
  EXPECT_TRUE(tail->dirty);
  EXPECT_DOUBLE_EQ(head->entry_time, tail->entry_time);
  EXPECT_DOUBLE_EQ(list.total(), 100.0);
  EXPECT_DOUBLE_EQ(list.dirty_total(), 100.0);
  EXPECT_DOUBLE_EQ(list.file_bytes("a"), 100.0);
  EXPECT_EQ(list.block_count(), 2u);
  list.check_invariants();
}

TEST(LruList, SplitRejectsBadSizes) {
  LruList list;
  list.insert(make_block(1, "a", 100, 1.0));
  EXPECT_THROW(list.split(list.begin(), 0.0, 2), std::invalid_argument);
  EXPECT_THROW(list.split(list.begin(), 100.0, 2), std::invalid_argument);
  EXPECT_THROW(list.split(list.begin(), -5.0, 2), std::invalid_argument);
}

TEST(LruList, SetDirtyUpdatesAccounting) {
  LruList list;
  list.insert(make_block(1, "a", 40, 1.0, /*dirty=*/true));
  list.set_dirty(list.begin(), false);
  EXPECT_DOUBLE_EQ(list.dirty_total(), 0.0);
  list.set_dirty(list.begin(), true);
  EXPECT_DOUBLE_EQ(list.dirty_total(), 40.0);
  list.set_dirty(list.begin(), true);  // idempotent
  EXPECT_DOUBLE_EQ(list.dirty_total(), 40.0);
  list.check_invariants();
}

TEST(LruList, ExtractRemovesAndReturns) {
  LruList list;
  list.insert(make_block(1, "a", 10, 1.0));
  list.insert(make_block(2, "b", 20, 2.0, true));
  DataBlock b = list.extract(list.begin());
  EXPECT_EQ(b.id, 1u);
  EXPECT_DOUBLE_EQ(list.total(), 20.0);
  EXPECT_EQ(list.block_count(), 1u);
  EXPECT_DOUBLE_EQ(list.file_bytes("a"), 0.0);
  list.check_invariants();
}

TEST(LruList, LruDirtyAndCleanSelectors) {
  LruList list;
  list.insert(make_block(1, "a", 10, 1.0, /*dirty=*/false));
  list.insert(make_block(2, "b", 10, 2.0, /*dirty=*/true));
  list.insert(make_block(3, "c", 10, 3.0, /*dirty=*/false));
  list.insert(make_block(4, "d", 10, 4.0, /*dirty=*/true));
  EXPECT_EQ(list.lru_dirty()->id, 2u);
  EXPECT_EQ(list.lru_clean()->id, 1u);
  EXPECT_EQ(list.lru_dirty("b")->id, 4u);
  EXPECT_EQ(list.lru_clean("a")->id, 3u);
  LruList empty;
  EXPECT_EQ(empty.lru_dirty(), empty.end());
  EXPECT_EQ(empty.lru_clean(), empty.end());
}

TEST(LruList, CleanExcluding) {
  LruList list;
  list.insert(make_block(1, "a", 10, 1.0, false));
  list.insert(make_block(2, "a", 10, 2.0, true));
  list.insert(make_block(3, "b", 30, 3.0, false));
  EXPECT_DOUBLE_EQ(list.clean_excluding(""), 40.0);
  EXPECT_DOUBLE_EQ(list.clean_excluding("a"), 30.0);
  EXPECT_DOUBLE_EQ(list.clean_excluding("b"), 10.0);
}

TEST(LruList, FindById) {
  LruList list;
  list.insert(make_block(7, "a", 10, 1.0));
  list.insert(make_block(9, "b", 10, 2.0));
  EXPECT_EQ(list.find(9)->file, "b");
  EXPECT_EQ(list.find(42), list.end());
}

TEST(LruList, ResizeAdjustsAccounts) {
  LruList list;
  list.insert(make_block(1, "a", 10, 1.0, true));
  list.resize(list.begin(), 25.0);
  EXPECT_DOUBLE_EQ(list.total(), 25.0);
  EXPECT_DOUBLE_EQ(list.dirty_total(), 25.0);
  EXPECT_DOUBLE_EQ(list.file_bytes("a"), 25.0);
  list.check_invariants();
}

// Property sweep: random op sequences keep accounting exact.
class LruListProperty : public ::testing::TestWithParam<int> {};

TEST_P(LruListProperty, RandomOpsPreserveInvariants) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  LruList list;
  std::uint64_t next_id = 1;
  double clock = 0.0;
  const std::string files[] = {"f1", "f2", "f3"};
  for (int step = 0; step < 400; ++step) {
    clock += rng.uniform(0.0, 1.0);
    const double roll = rng.next_double();
    if (roll < 0.40 || list.empty()) {
      list.insert(make_block(next_id++, files[rng.uniform_int(0, 2)], rng.uniform(1.0, 100.0),
                             clock, rng.bernoulli(0.4)));
    } else {
      // Pick a random existing block.
      auto it = list.begin();
      std::advance(it, static_cast<long>(rng.uniform_int(0, list.block_count() - 1)));
      if (roll < 0.55) {
        list.touch(it, clock);
      } else if (roll < 0.70) {
        if (it->size > 2.0) list.split(it, it->size / 2.0, next_id++);
      } else if (roll < 0.85) {
        list.set_dirty(it, !it->dirty);
      } else {
        list.erase(it);
      }
    }
    ASSERT_NO_THROW(list.check_invariants()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomOps, LruListProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace pcs::cache
