// Property test: the indexed LruList against a naive reference model.
//
// The reference stores blocks in a plain vector ordered exactly by the
// documented semantics (last-access order, FIFO among equal access times,
// in-place touch when the position stays valid) and recomputes every query
// by brute force.  Randomized operation sequences must keep the real list
// and the reference in lockstep: identical block order (= eviction order),
// identical totals, identical per-file accounting, and identical answers
// from every indexed query — this guards the id index, the dirty/clean
// index sets, the per-file dirty index and the order-key machinery.
#include "pagecache/lru_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pcs::cache {
namespace {

struct RefBlock {
  std::uint64_t id;
  std::string file;
  double size;
  double last_access;
  bool dirty;
};

/// Brute-force reference implementation of the LruList semantics.
class NaiveLru {
 public:
  void insert(RefBlock b) {
    // Before the first strictly newer block: FIFO among equals.
    auto pos = std::find_if(blocks_.begin(), blocks_.end(),
                            [&](const RefBlock& x) { return x.last_access > b.last_access; });
    blocks_.insert(pos, std::move(b));
  }

  void erase(std::uint64_t id) {
    blocks_.erase(std::find_if(blocks_.begin(), blocks_.end(),
                               [&](const RefBlock& x) { return x.id == id; }));
  }

  RefBlock* find(std::uint64_t id) {
    auto it = std::find_if(blocks_.begin(), blocks_.end(),
                           [&](const RefBlock& x) { return x.id == id; });
    return it == blocks_.end() ? nullptr : &*it;
  }

  void touch(std::uint64_t id, double now) {
    RefBlock* b = find(id);
    if (b->last_access == now) return;  // documented no-op fast path
    RefBlock copy = *b;
    copy.last_access = now;
    erase(id);
    insert(std::move(copy));
  }

  void split(std::uint64_t id, double first_size, std::uint64_t second_id) {
    auto it = std::find_if(blocks_.begin(), blocks_.end(),
                           [&](const RefBlock& x) { return x.id == id; });
    RefBlock second = *it;
    second.id = second_id;
    second.size = it->size - first_size;
    it->size = first_size;
    blocks_.insert(std::next(it), std::move(second));
  }

  void set_dirty(std::uint64_t id, bool dirty) { find(id)->dirty = dirty; }
  void resize(std::uint64_t id, double new_size) { find(id)->size = new_size; }

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const RefBlock& b : blocks_) t += b.size;
    return t;
  }
  [[nodiscard]] double dirty_total() const {
    double t = 0.0;
    for (const RefBlock& b : blocks_) {
      if (b.dirty) t += b.size;
    }
    return t;
  }
  [[nodiscard]] double file_bytes(const std::string& file) const {
    double t = 0.0;
    for (const RefBlock& b : blocks_) {
      if (b.file == file) t += b.size;
    }
    return t;
  }
  [[nodiscard]] double clean_excluding(const std::string& exclude) const {
    double t = 0.0;
    for (const RefBlock& b : blocks_) {
      if (!b.dirty && b.file != exclude) t += b.size;
    }
    return t;
  }
  [[nodiscard]] const RefBlock* lru_dirty(const std::string& exclude) const {
    for (const RefBlock& b : blocks_) {
      if (b.dirty && (exclude.empty() || b.file != exclude)) return &b;
    }
    return nullptr;
  }
  [[nodiscard]] const RefBlock* lru_clean(const std::string& exclude) const {
    for (const RefBlock& b : blocks_) {
      if (!b.dirty && (exclude.empty() || b.file != exclude)) return &b;
    }
    return nullptr;
  }
  [[nodiscard]] const RefBlock* lru_dirty_of(const std::string& file) const {
    for (const RefBlock& b : blocks_) {
      if (b.dirty && b.file == file) return &b;
    }
    return nullptr;
  }

  [[nodiscard]] const std::vector<RefBlock>& blocks() const { return blocks_; }

 private:
  std::vector<RefBlock> blocks_;
};

class LruProperty : public ::testing::TestWithParam<int> {};

TEST_P(LruProperty, MatchesNaiveReference) {
  util::Rng rng(0xabcdef00u + static_cast<std::uint64_t>(GetParam()));
  LruList list;
  NaiveLru ref;
  const std::vector<std::string> files = {"a", "b", "c", "d", "e", "f"};
  std::uint64_t next_id = 1;
  double now = 0.0;
  const double tol = 1e-6;

  auto random_live_id = [&]() -> std::uint64_t {
    const auto& blocks = ref.blocks();
    return blocks[rng.uniform_int(0, blocks.size() - 1)].id;
  };

  for (int op = 0; op < 2500; ++op) {
    now += rng.uniform(0.0, 2.0);
    const std::uint64_t kind = rng.uniform_int(0, 9);
    if (kind <= 2 || ref.blocks().empty()) {
      // Insert: mostly at the current time, sometimes backdated mid-list,
      // sometimes exactly duplicating an existing access time (FIFO ties).
      RefBlock b;
      b.id = next_id++;
      b.file = files[rng.uniform_int(0, files.size() - 1)];
      b.size = rng.uniform(1.0, 1000.0);
      b.last_access = now;
      if (!ref.blocks().empty() && rng.bernoulli(0.3)) {
        const auto& blocks = ref.blocks();
        b.last_access = rng.bernoulli(0.5)
                            ? blocks[rng.uniform_int(0, blocks.size() - 1)].last_access
                            : rng.uniform(0.0, now);
      }
      b.dirty = rng.bernoulli(0.4);
      DataBlock real;
      real.id = b.id;
      real.file = b.file;
      real.size = b.size;
      real.entry_time = b.last_access;
      real.last_access = b.last_access;
      real.dirty = b.dirty;
      list.insert(std::move(real));
      ref.insert(std::move(b));
    } else if (kind == 3) {
      // Touch to the current time — or re-touch at the unchanged time to
      // exercise the no-op fast path.
      const std::uint64_t id = random_live_id();
      const double t = rng.bernoulli(0.2) ? ref.find(id)->last_access : now;
      list.touch(list.find(id), t);
      ref.touch(id, t);
    } else if (kind == 4) {
      const std::uint64_t id = random_live_id();
      auto it = list.find(id);
      if (it->size > 2.0) {
        const double first = it->size * rng.uniform(0.1, 0.9);
        const std::uint64_t second_id = next_id++;
        list.split(it, first, second_id);
        ref.split(id, first, second_id);
      }
    } else if (kind == 5) {
      const std::uint64_t id = random_live_id();
      const bool dirty = rng.bernoulli(0.5);
      list.set_dirty(list.find(id), dirty);
      ref.set_dirty(id, dirty);
    } else if (kind == 6) {
      const std::uint64_t id = random_live_id();
      const double new_size = rng.uniform(1.0, 1500.0);
      list.resize(list.find(id), new_size);
      ref.resize(id, new_size);
    } else if (kind == 7) {
      // Evict like the MemoryManager does: take the LRU clean block.
      auto it = list.lru_clean("");
      const RefBlock* rb = ref.lru_clean("");
      ASSERT_EQ(it == list.end(), rb == nullptr);
      if (it != list.end()) {
        ASSERT_EQ(it->id, rb->id);
        list.erase(it);
        ref.erase(rb->id);
      }
    } else {
      const std::uint64_t id = random_live_id();
      if (rng.bernoulli(0.5)) {
        list.erase(list.find(id));
      } else {
        DataBlock b = list.extract(list.find(id));
        EXPECT_EQ(b.id, id);
      }
      ref.erase(id);
    }

    // Full lockstep comparison.
    ASSERT_NO_THROW(list.check_invariants());
    ASSERT_EQ(list.block_count(), ref.blocks().size());
    ASSERT_NEAR(list.total(), ref.total(), tol);
    ASSERT_NEAR(list.dirty_total(), ref.dirty_total(), tol);
    std::size_t i = 0;
    for (const DataBlock& b : list) {
      ASSERT_EQ(b.id, ref.blocks()[i].id) << "order diverged at position " << i;
      ++i;
    }
    for (const std::string& f : files) {
      ASSERT_NEAR(list.file_bytes(f), ref.file_bytes(f), tol) << f;
    }
    const std::string exclude =
        rng.bernoulli(0.3) ? "" : files[rng.uniform_int(0, files.size() - 1)];
    ASSERT_NEAR(list.clean_excluding(exclude), ref.clean_excluding(exclude), tol);
    auto d = list.lru_dirty(exclude);
    const RefBlock* rd = ref.lru_dirty(exclude);
    ASSERT_EQ(d == list.end(), rd == nullptr);
    if (rd != nullptr) ASSERT_EQ(d->id, rd->id);
    auto c = list.lru_clean(exclude);
    const RefBlock* rc = ref.lru_clean(exclude);
    ASSERT_EQ(c == list.end(), rc == nullptr);
    if (rc != nullptr) ASSERT_EQ(c->id, rc->id);
    const std::string file = files[rng.uniform_int(0, files.size() - 1)];
    auto df = list.lru_dirty_of(file);
    const RefBlock* rdf = ref.lru_dirty_of(file);
    ASSERT_EQ(df == list.end(), rdf == nullptr);
    if (rdf != nullptr) ASSERT_EQ(df->id, rdf->id);
    // find(): a live id resolves, a never-issued id does not.
    if (!ref.blocks().empty()) {
      const std::uint64_t id = random_live_id();
      auto it = list.find(id);
      ASSERT_NE(it, list.end());
      ASSERT_EQ(it->id, id);
    }
    ASSERT_EQ(list.find(next_id + 1000), list.end());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSequences, LruProperty, ::testing::Range(0, 8));

// Repeatedly splitting the head block subdivides the same order-key gap
// until fractional precision runs out, forcing a full renumber; order and
// accounting must survive.
TEST(LruList, OrderKeyRenumberUnderDeepSplits) {
  LruList list;
  // The anchor keeps the subdivided key gap away from zero: midpoints
  // between 1.0-magnitude keys exhaust double precision after ~52 splits
  // (near 0.0 they would descend through subnormals instead), so this test
  // genuinely reaches the renumber path.
  DataBlock anchor;
  anchor.id = 100000;
  anchor.file = "h";
  anchor.size = 5.0;
  anchor.last_access = 0.5;
  list.insert(std::move(anchor));
  DataBlock b;
  b.id = 1;
  b.file = "f";
  b.size = std::ldexp(1.0, 120);  // allows ~119 halvings before the size floor
  b.last_access = 1.0;
  b.dirty = true;
  list.insert(std::move(b));
  DataBlock tail;
  tail.id = 2;
  tail.file = "g";
  tail.size = 10.0;
  tail.last_access = 1.0;
  list.insert(std::move(tail));

  std::uint64_t next = 3;
  auto it = list.find(1);
  for (int i = 0; i < 200; ++i) {
    if (it->size < 2.0) break;
    auto [head, second] = list.split(it, it->size / 2.0, next++);
    (void)second;
    it = head;
    list.check_invariants();
  }
  EXPECT_GT(list.block_count(), 100u);  // deep enough to have forced a renumber
  // The anchor stayed first, the split block kept its identity right after
  // it, and the tail block is still last.
  EXPECT_EQ(list.begin()->id, 100000u);
  EXPECT_EQ(std::next(list.begin())->id, 1u);
  std::uint64_t last_id = 0;
  for (const DataBlock& blk : list) last_id = blk.id;
  EXPECT_EQ(last_id, 2u);
}

}  // namespace
}  // namespace pcs::cache
