#include "pagecache/memory_manager.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pcs::cache {
namespace {

// Memory channels at 100 B/s, fake disk at 10 B/s read and write, 1000 B of
// memory: timings divide evenly.
class MemoryManagerTest : public ::testing::Test {
 protected:
  MemoryManagerTest()
      : store_(engine_, 10.0, 10.0),
        mem_read_(engine_.new_resource("mem:rd", 100.0)),
        mem_write_(engine_.new_resource("mem:wr", 100.0)) {}

  MemoryManager make_mm(const CacheParams& params = {}, double total = 1000.0) {
    return MemoryManager(engine_, params, total, mem_read_, mem_write_, store_);
  }

  sim::Engine engine_;
  test::FakeStore store_;
  sim::Resource* mem_read_;
  sim::Resource* mem_write_;
};

TEST_F(MemoryManagerTest, InitialState) {
  MemoryManager mm = make_mm();
  EXPECT_DOUBLE_EQ(mm.total_mem(), 1000.0);
  EXPECT_DOUBLE_EQ(mm.free_mem(), 1000.0);
  EXPECT_DOUBLE_EQ(mm.cached(), 0.0);
  EXPECT_DOUBLE_EQ(mm.dirty(), 0.0);
  EXPECT_DOUBLE_EQ(mm.anonymous(), 0.0);
  EXPECT_DOUBLE_EQ(mm.dirty_limit(), 200.0);
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, RejectsBadConfig) {
  EXPECT_THROW(make_mm({}, -1.0), CacheError);
  CacheParams bad;
  bad.dirty_ratio = 1.5;
  EXPECT_THROW(make_mm(bad), CacheError);
}

TEST_F(MemoryManagerTest, WriteToCacheCreatesDirtyBlock) {
  MemoryManager mm = make_mm();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f1", 300.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm.cached(), 300.0);
  EXPECT_DOUBLE_EQ(mm.dirty(), 300.0);
  EXPECT_DOUBLE_EQ(mm.free_mem(), 700.0);
  // 300 B at 100 B/s memory write bandwidth.
  EXPECT_DOUBLE_EQ(engine_.now(), 3.0);
  EXPECT_TRUE(store_.writes.empty());
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, WriteToCacheRequiresFreeMemory) {
  MemoryManager mm = make_mm();
  mm.allocate_anonymous(900.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f1", 300.0);
    (void)e;
  };
  engine_.spawn("w", body(engine_));
  EXPECT_THROW(engine_.run(), CacheError);
}

TEST_F(MemoryManagerTest, FlushWritesLruFirstAndMarksClean) {
  MemoryManager mm = make_mm();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f1", 100.0);
    co_await e.sleep(1.0);
    co_await mm.write_to_cache("f2", 100.0);
    co_await mm.flush(100.0);
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm.dirty(), 100.0);  // f2 still dirty
  EXPECT_DOUBLE_EQ(mm.cached(), 200.0);
  ASSERT_EQ(store_.writes.size(), 1u);
  EXPECT_EQ(store_.writes[0].first, "f1");  // least recently used first
  EXPECT_DOUBLE_EQ(store_.writes[0].second, 100.0);
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, FlushSplitsPartialBlock) {
  MemoryManager mm = make_mm();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f1", 100.0);
    co_await mm.flush(30.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm.dirty(), 70.0);
  EXPECT_DOUBLE_EQ(mm.cached(), 100.0);
  EXPECT_DOUBLE_EQ(store_.total_written(), 30.0);
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, FlushNegativeAmountIsNoop) {
  MemoryManager mm = make_mm();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f1", 100.0);
    co_await mm.flush(-50.0);
    co_await mm.flush(0.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm.dirty(), 100.0);
  EXPECT_TRUE(store_.writes.empty());
}

TEST_F(MemoryManagerTest, FlushExcludesFile) {
  MemoryManager mm = make_mm();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("keep", 100.0);
    co_await e.sleep(1.0);
    co_await mm.write_to_cache("other", 100.0);
    co_await mm.flush(100.0, "keep");
  };
  test::run_actor(engine_, body(engine_));
  ASSERT_EQ(store_.writes.size(), 1u);
  EXPECT_EQ(store_.writes[0].first, "other");
}

TEST_F(MemoryManagerTest, FlushStopsWhenNoDirtyLeft) {
  MemoryManager mm = make_mm();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f1", 50.0);
    co_await mm.flush(500.0);  // asks for more than exists
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm.dirty(), 0.0);
  EXPECT_DOUBLE_EQ(store_.total_written(), 50.0);
}

TEST_F(MemoryManagerTest, EvictRemovesCleanInactiveOnly) {
  MemoryManager mm = make_mm();
  mm.add_to_cache("clean", 200.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("dirty", 100.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  mm.evict(300.0);
  EXPECT_DOUBLE_EQ(mm.cached("clean"), 0.0);
  EXPECT_DOUBLE_EQ(mm.cached("dirty"), 100.0);  // dirty data is not evictable
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, EvictSplitsLastBlock) {
  MemoryManager mm = make_mm();
  mm.add_to_cache("f", 200.0);
  mm.evict(50.0);
  EXPECT_DOUBLE_EQ(mm.cached("f"), 150.0);
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, EvictExcludesFile) {
  MemoryManager mm = make_mm();
  mm.add_to_cache("a", 100.0);
  mm.add_to_cache("b", 100.0);
  mm.evict(200.0, "a");
  EXPECT_DOUBLE_EQ(mm.cached("a"), 100.0);
  EXPECT_DOUBLE_EQ(mm.cached("b"), 0.0);
}

TEST_F(MemoryManagerTest, EvictDemotesFromActiveUnderPressure) {
  MemoryManager mm = make_mm();
  mm.add_to_cache("f", 300.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    // Read it so it becomes active.
    double served = co_await mm.read_from_cache("f", 300.0);
    EXPECT_DOUBLE_EQ(served, 300.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_GT(mm.active_list().total(), 0.0);
  // Evicting more than the inactive list holds forces demotion.
  mm.evict(250.0);
  EXPECT_NEAR(mm.cached("f"), 50.0, 1.0);
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, ReadFromCachePromotesAndMerges) {
  CacheParams params;
  MemoryManager mm = make_mm(params);
  mm.add_to_cache("f", 100.0);
  mm.add_to_cache("f", 100.0);
  EXPECT_EQ(mm.inactive_list().block_count(), 2u);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    double served = co_await mm.read_from_cache("f", 200.0);
    EXPECT_DOUBLE_EQ(served, 200.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // Both clean blocks merged into one active block; balancing then demotes
  // part of it to keep active <= 2x inactive.
  EXPECT_DOUBLE_EQ(mm.cached("f"), 200.0);
  EXPECT_NEAR(mm.active_list().total(), 200.0 * 2.0 / 3.0, 1.0);
  EXPECT_NEAR(mm.inactive_list().total(), 200.0 / 3.0, 1.0);
  // 200 B at 100 B/s memory read.
  EXPECT_DOUBLE_EQ(engine_.now(), 2.0);
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, ReadFromCacheDirtyBlocksKeepEntryTime) {
  MemoryManager mm = make_mm();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f", 100.0);
    co_await e.sleep(10.0);
    double served = co_await mm.read_from_cache("f", 100.0);
    EXPECT_DOUBLE_EQ(served, 100.0);
  };
  test::run_actor(engine_, body(engine_));
  // The dirty block moved to the active list individually with its entry
  // time preserved (entry at ~0, access at ~11).
  bool found = false;
  for (const DataBlock& b : mm.active_list()) {
    if (b.file == "f" && b.dirty) {
      found = true;
      EXPECT_LT(b.entry_time, 1.0);
      EXPECT_GT(b.last_access, 10.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MemoryManagerTest, ReadFromCacheReportsShortfall) {
  MemoryManager mm = make_mm();
  mm.add_to_cache("f", 50.0);
  double served = -1.0;
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    served = co_await mm.read_from_cache("f", 200.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(served, 50.0);
}

TEST_F(MemoryManagerTest, BalanceKeepsActiveAtMostTwiceInactive) {
  MemoryManager mm = make_mm();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    for (int i = 0; i < 6; ++i) {
      std::string file = "f" + std::to_string(i);
      mm.add_to_cache(file, 100.0);
      double served = co_await mm.read_from_cache(file, 100.0);  // promote
      EXPECT_DOUBLE_EQ(served, 100.0);
      mm.check_invariants();
    }
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_LE(mm.active_list().total(), 2.0 * mm.inactive_list().total() + 1.0);
}

TEST_F(MemoryManagerTest, SingleListPolicySkipsBalancing) {
  CacheParams params;
  params.lru_policy = LruPolicy::SingleList;
  MemoryManager mm = make_mm(params);
  mm.add_to_cache("f", 300.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    double served = co_await mm.read_from_cache("f", 300.0);
    EXPECT_DOUBLE_EQ(served, 300.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // Everything lands in the active list and stays there.
  EXPECT_DOUBLE_EQ(mm.active_list().total(), 300.0);
  EXPECT_DOUBLE_EQ(mm.inactive_list().total(), 0.0);
}

TEST_F(MemoryManagerTest, AnonymousMemoryAccounting) {
  MemoryManager mm = make_mm();
  mm.allocate_anonymous(400.0);
  EXPECT_DOUBLE_EQ(mm.anonymous(), 400.0);
  EXPECT_DOUBLE_EQ(mm.free_mem(), 600.0);
  mm.release_anonymous(150.0);
  EXPECT_DOUBLE_EQ(mm.anonymous(), 250.0);
  mm.release_anonymous(1e9);  // over-release clamps at zero
  EXPECT_DOUBLE_EQ(mm.anonymous(), 0.0);
}

TEST_F(MemoryManagerTest, AnonymousAllocationEvictsCleanCache) {
  MemoryManager mm = make_mm();
  mm.add_to_cache("f", 800.0);
  mm.allocate_anonymous(900.0);  // forces reclaim of cached data
  EXPECT_DOUBLE_EQ(mm.anonymous(), 900.0);
  EXPECT_LE(mm.cached(), 100.0 + 1.0);
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, AnonymousOvercommitThrows) {
  MemoryManager mm = make_mm();
  EXPECT_THROW(mm.allocate_anonymous(1500.0), CacheError);
}

TEST_F(MemoryManagerTest, AddToCacheBestEffortUnderPressure) {
  MemoryManager mm = make_mm();
  mm.allocate_anonymous(900.0);
  double cached = mm.add_to_cache("f", 200.0);
  EXPECT_NEAR(cached, 100.0, 1.0);  // only what fits
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, PeriodicFlushWritesExpiredBlocks) {
  CacheParams params;
  params.dirty_expire = 30.0;
  params.flush_period = 5.0;
  MemoryManager mm = make_mm(params);
  mm.start_periodic_flush();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f", 100.0);
    co_await e.sleep(20.0);
    EXPECT_DOUBLE_EQ(mm.dirty(), 100.0);  // not yet expired
    co_await e.sleep(20.0);               // now past 30 s + one flush period
    EXPECT_DOUBLE_EQ(mm.dirty(), 0.0);
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(store_.total_written(), 100.0);
}

TEST_F(MemoryManagerTest, DropFileRemovesAllBlocks) {
  MemoryManager mm = make_mm();
  mm.add_to_cache("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f", 50.0);
    co_await mm.write_to_cache("g", 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  mm.drop_file("f");
  EXPECT_DOUBLE_EQ(mm.cached("f"), 0.0);
  EXPECT_DOUBLE_EQ(mm.cached("g"), 50.0);
  EXPECT_DOUBLE_EQ(mm.dirty(), 50.0);
  mm.check_invariants();
}

TEST_F(MemoryManagerTest, SnapshotReflectsState) {
  MemoryManager mm = make_mm();
  mm.add_to_cache("f", 100.0);
  mm.allocate_anonymous(50.0);
  CacheSnapshot s = mm.snapshot();
  EXPECT_DOUBLE_EQ(s.total, 1000.0);
  EXPECT_DOUBLE_EQ(s.cached, 100.0);
  EXPECT_DOUBLE_EQ(s.anonymous, 50.0);
  EXPECT_DOUBLE_EQ(s.free, 850.0);
  EXPECT_DOUBLE_EQ(s.used(), 150.0);
  EXPECT_DOUBLE_EQ(s.per_file.at("f"), 100.0);
}

TEST_F(MemoryManagerTest, ConcurrentFlushersDoNotDoubleFlush) {
  MemoryManager mm = make_mm();
  auto writer = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f", 200.0);
    (void)e;
  };
  test::run_actor(engine_, writer(engine_));
  auto flusher = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.flush(200.0);
    (void)e;
  };
  engine_.spawn("f1", flusher(engine_));
  engine_.spawn("f2", flusher(engine_));
  engine_.run();
  // Both flushers saw the same dirty pool; total written must equal the
  // dirty amount, not twice it.
  EXPECT_DOUBLE_EQ(store_.total_written(), 200.0);
  EXPECT_DOUBLE_EQ(mm.dirty(), 0.0);
}

}  // namespace
}  // namespace pcs::cache
