// The metrics/experiment layer: dotted-path extraction, per-case derived
// ops and cross-case aggregations against hand-computed values, embedded
// expectation checks, emitters, and the determinism contract (reports are
// byte-identical for any --jobs and pinned by the committed
// experiments/*.expected.json files).
#include <gtest/gtest.h>

#include <string>

#include "metrics/experiment.hpp"
#include "metrics/result_json.hpp"
#include "metrics/value_path.hpp"
#include "util/json.hpp"

#ifndef PCS_SOURCE_DIR
#define PCS_SOURCE_DIR "."
#endif

namespace pcs::metrics {
namespace {

util::Json obj() { return util::Json{util::JsonObject{}}; }

// --- value paths -----------------------------------------------------------

TEST(ValuePath, ExtractsScalarsObjectsAndIndices) {
  util::Json doc = util::Json::parse(R"json({
    "makespan": 12.5,
    "tasks": {"a0:task1": {"read_time": 3.0}},
    "profile": [{"dirty": 1.0}, {"dirty": 2.0}, {"dirty": 4.0}]
  })json");
  EXPECT_EQ(extract_path(doc, "makespan").as_number(), 12.5);
  EXPECT_EQ(extract_path(doc, "tasks.a0:task1.read_time").as_number(), 3.0);
  EXPECT_EQ(extract_path(doc, "profile.1.dirty").as_number(), 2.0);
}

TEST(ValuePath, WildcardMapsOverArrays) {
  util::Json doc = util::Json::parse(R"json({"profile": [{"d": 1}, {"d": 2}, {"d": 3}]})json");
  util::Json column = extract_path(doc, "profile.*.d");
  ASSERT_TRUE(column.is_array());
  ASSERT_EQ(column.size(), 3u);
  EXPECT_EQ(column.at(2).as_number(), 3.0);
}

TEST(ValuePath, NamesTheFailingSegment) {
  util::Json doc = util::Json::parse(R"json({"tasks": {"t": {"x": 1}}, "arr": [1]})json");
  EXPECT_THROW((void)extract_path(doc, "tasks.missing.x"), MetricsError);
  EXPECT_THROW((void)extract_path(doc, "arr.7"), MetricsError);
  EXPECT_THROW((void)extract_path(doc, "tasks.t.x.deeper"), MetricsError);
  EXPECT_THROW((void)extract_path(doc, "makespan.*"), MetricsError);
  EXPECT_TRUE(extract_path_or_null(doc, "tasks.missing.x").is_null());
  try {
    (void)extract_path(doc, "tasks.missing.x");
    FAIL();
  } catch (const MetricsError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

// --- a tiny compute-only experiment with hand-computable outputs -----------
//
// Tasks with no files on a 1 Gflops host: makespan == cpu_seconds exactly,
// so every derived value and aggregation can be checked by hand.

util::Json compute_only_experiment() {
  return util::Json::parse(R"json({
    "name": "unit",
    "sweep": {
      "base": {
        "name": "unit",
        "platform": {"hosts": [
          {"name": "n0", "speed_gflops": 1, "cores": 4, "ram": "8 GB",
           "memory": {"read_bw_MBps": 1000, "write_bw_MBps": 1000},
           "disks": [{"name": "d0", "read_bw_MBps": 100, "write_bw_MBps": 100}]}
        ]},
        "workload": {"type": "dag", "workflow": {
          "tasks": [{"name": "t", "cpu_seconds": 1}]}}
      },
      "grid": [
        {"labels": ["ref", "double"],
         "values": [{"simulator": "wrench_cache"}, {"simulator": "wrench_cache"}]},
        {"path": "workload.workflow.tasks.0.cpu_seconds",
         "values": [10, 20, 30, 40, 100],
         "labels": ["c10", "c20", "c30", "c40", "c100"]}
      ]
    },
    "series": [
      {"name": "cpu_s", "source": "case",
       "path": "workload.workflow.tasks.0.cpu_seconds"},
      {"name": "makespan", "path": "makespan"},
      {"name": "missing", "path": "profile.17.dirty", "required": false}
    ],
    "derived": [
      {"name": "twice", "op": "sum", "of": ["makespan", "makespan"]},
      {"name": "err_vs_ref", "op": "rel_error_pct", "of": "makespan",
       "reference": {"axis": 0, "label": "ref"}}
    ],
    "aggregations": [
      {"name": "mean_makespan", "op": "mean", "of": ["makespan"], "group_by": 0},
      {"name": "p50_makespan", "op": "percentile", "p": 50, "of": ["makespan"], "group_by": 0},
      {"name": "max_makespan", "op": "max", "of": ["makespan"]},
      {"name": "count", "op": "count", "of": ["makespan"]},
      {"name": "fit", "op": "linear_fit", "x": "cpu_s", "y": "makespan", "group_by": 0},
      {"name": "mean_err", "op": "mean", "of": ["err_vs_ref"], "group_by": 0}
    ],
    "expect": [
      {"case": "ref,c10", "of": "makespan", "equals": 10, "tol": 1e-9},
      {"aggregate": "fit", "group": "ref", "field": "slope", "equals": 1, "tol": 1e-9},
      {"equal_cases": ["ref,c10", "double,c10"], "of": "makespan"}
    ]
  })json");
}

TEST(Experiment, HandComputedSeriesDerivedAndAggregations) {
  ExperimentSpec spec = ExperimentSpec::parse(compute_only_experiment());
  ExperimentReport report = run_experiment(spec);
  EXPECT_TRUE(report.cases_ok);
  EXPECT_TRUE(report.checks_ok);
  const util::Json& doc = report.json;

  // 2 x 5 grid in row-major order; values extracted per case.
  ASSERT_EQ(doc.at("cases").size(), 10u);
  const util::Json& first = doc.at("cases").at(0);
  EXPECT_EQ(first.at("label").as_string(), "ref,c10");
  EXPECT_EQ(first.at("values").at("makespan").as_number(), 10.0);
  EXPECT_EQ(first.at("values").at("cpu_s").as_number(), 10.0);
  EXPECT_TRUE(first.at("values").at("missing").is_null());
  EXPECT_EQ(first.at("values").at("twice").as_number(), 20.0);
  // Both grid rows run identical scenarios, so the error vs ref is 0.
  EXPECT_EQ(doc.at("cases").at(5).at("label").as_string(), "double,c10");
  EXPECT_EQ(doc.at("cases").at(5).at("values").at("err_vs_ref").as_number(), 0.0);

  // Aggregations over {10, 20, 30, 40, 100} per group, hand-computed.
  const util::Json& agg = doc.at("aggregates");
  EXPECT_DOUBLE_EQ(agg.at("mean_makespan").at("ref").as_number(), 40.0);
  EXPECT_DOUBLE_EQ(agg.at("p50_makespan").at("ref").as_number(), 30.0);
  EXPECT_DOUBLE_EQ(agg.at("max_makespan").as_number(), 100.0);  // ungrouped pool
  EXPECT_EQ(agg.at("count").as_number(), 10.0);
  // makespan == cpu_seconds: a perfect y = x fit.
  EXPECT_NEAR(agg.at("fit").at("ref").at("slope").as_number(), 1.0, 1e-12);
  EXPECT_NEAR(agg.at("fit").at("ref").at("intercept").as_number(), 0.0, 1e-9);
  EXPECT_NEAR(agg.at("fit").at("ref").at("r2").as_number(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(agg.at("mean_err").at("double").as_number(), 0.0);

  // Every embedded expectation held.
  for (const util::Json& check : doc.at("checks").as_array()) {
    EXPECT_EQ(check.at("status").as_string(), "ok") << check.dump();
  }
}

TEST(Experiment, RelativeErrorAggregationAgainstHandComputedValues) {
  // Distinct cpu_seconds per grid row: errors are |sim - ref| / ref * 100.
  util::Json spec_doc = util::Json::parse(R"json({
    "name": "relerr",
    "sweep": {
      "base": {
        "platform": {"hosts": [
          {"name": "n0", "speed_gflops": 1, "cores": 4, "ram": "8 GB",
           "memory": {"read_bw_MBps": 1000, "write_bw_MBps": 1000},
           "disks": [{"name": "d0", "read_bw_MBps": 100, "write_bw_MBps": 100}]}
        ]},
        "workload": {"type": "dag", "workflow": {
          "tasks": [{"name": "t", "cpu_seconds": 1}]}}
      },
      "grid": [
        {"labels": ["ref", "sim"],
         "values": [{"workload.workflow.tasks.0.cpu_seconds": 10},
                    {"workload.workflow.tasks.0.cpu_seconds": 25}]}
      ]
    },
    "series": [{"name": "makespan", "path": "makespan"}],
    "derived": [{"name": "err", "op": "rel_error_pct", "of": "makespan",
                 "reference": {"axis": 0, "label": "ref"}}],
    "aggregations": [{"name": "mean_err", "op": "mean", "of": ["err"], "group_by": 0}]
  })json");
  ExperimentReport report = run_experiment(ExperimentSpec::parse(spec_doc));
  ASSERT_TRUE(report.cases_ok);
  // |25 - 10| / 10 * 100 = 150%.
  EXPECT_DOUBLE_EQ(
      report.json.at("aggregates").at("mean_err").at("sim").as_number(), 150.0);
  EXPECT_DOUBLE_EQ(
      report.json.at("aggregates").at("mean_err").at("ref").as_number(), 0.0);
}

TEST(Experiment, FailedExpectationsFlagTheReport) {
  util::Json doc = compute_only_experiment();
  util::Json bad = obj();
  bad.set("case", "ref,c10").set("of", "makespan").set("equals", 11.0);
  doc.as_object()["expect"] = util::Json{util::JsonArray{}}.push_back(bad);
  ExperimentReport report = run_experiment(ExperimentSpec::parse(doc));
  EXPECT_TRUE(report.cases_ok);
  EXPECT_FALSE(report.checks_ok);
  EXPECT_EQ(report.json.at("checks").at(0).at("status").as_string(), "FAIL");
}

TEST(Experiment, PercentageTolerancesWidenEqualsAndEqualCases) {
  util::Json doc = compute_only_experiment();
  // makespan of ref,c10 is exactly 10: 10.4 is outside any absolute tol we
  // pass, but inside 5%; 11 is outside 5% — and the same for equal_cases,
  // where c10 and c20 differ by 100% of the first value.
  doc.as_object()["expect"] = util::Json::parse(R"json([
    {"case": "ref,c10", "of": "makespan", "equals": 10.4, "tol_pct": 5},
    {"equal_cases": ["ref,c10", "double,c10"], "of": "makespan", "tol_pct": 5},
    {"equal_cases": ["ref,c10", "ref,c20"], "of": "makespan", "tol_pct": 150}
  ])json");
  ExperimentReport wide = run_experiment(ExperimentSpec::parse(doc));
  EXPECT_TRUE(wide.checks_ok) << wide.json.at("checks").dump(2);

  doc.as_object()["expect"] = util::Json::parse(R"json([
    {"case": "ref,c10", "of": "makespan", "equals": 11, "tol_pct": 5}
  ])json");
  EXPECT_FALSE(run_experiment(ExperimentSpec::parse(doc)).checks_ok);
  doc.as_object()["expect"] = util::Json::parse(R"json([
    {"equal_cases": ["ref,c10", "ref,c20"], "of": "makespan", "tol_pct": 5}
  ])json");
  EXPECT_FALSE(run_experiment(ExperimentSpec::parse(doc)).checks_ok);
}

TEST(Experiment, CaseErrorsAreCapturedNotFatal) {
  util::Json doc = compute_only_experiment();
  // Sabotage one case with an unknown simulator; the other cases survive.
  util::Json& axis0 = doc.as_object()["sweep"].as_object()["grid"].as_array()[0];
  axis0.as_object()["values"].as_array()[1] =
      util::Json::parse(R"json({"simulator": "not_a_simulator"})json");
  doc.as_object()["expect"] = util::Json{util::JsonArray{}};
  // err_vs_ref (and the aggregations over it) would need the sabotaged row.
  doc.as_object()["derived"] = util::Json{util::JsonArray{}};
  doc.as_object()["aggregations"] = util::Json{util::JsonArray{}};
  ExperimentReport report = run_experiment(ExperimentSpec::parse(doc));
  EXPECT_FALSE(report.cases_ok);
  const util::Json& cases = report.json.at("cases");
  EXPECT_FALSE(cases.at(0).contains("error"));
  EXPECT_TRUE(cases.at(5).contains("error"));
  EXPECT_FALSE(cases.at(5).contains("values"));
}

TEST(Experiment, ParserRejectsMalformedSpecs) {
  EXPECT_THROW((void)ExperimentSpec::parse(util::Json::parse(R"json({"name": "x"})json")),
               MetricsError);  // no sweep
  EXPECT_THROW((void)ExperimentSpec::parse(util::Json::parse(
                   R"json({"sweep": {"base": {}, "cases": [{"overrides": {}}]}})json")),
               MetricsError);  // no series
  util::Json dup = compute_only_experiment();
  dup.as_object()["series"].as_array()[1].set("name", "cpu_s");  // duplicate name
  EXPECT_THROW((void)ExperimentSpec::parse(dup), MetricsError);
}

TEST(Experiment, ReportsAreByteIdenticalForAnyJobs) {
  // The full determinism contract on a committed spec: jobs 1/4/8 produce
  // the same bytes, and those bytes match the committed expected report.
  ExperimentSpec spec = ExperimentSpec::from_file(std::string(PCS_SOURCE_DIR) +
                                                  "/experiments/table1.json");
  const std::string r1 = run_experiment(spec, {.jobs = 1}).json.dump(2);
  const std::string r4 = run_experiment(spec, {.jobs = 4}).json.dump(2);
  const std::string r8 = run_experiment(spec, {.jobs = 8}).json.dump(2);
  EXPECT_EQ(r1, r4);
  EXPECT_EQ(r1, r8);
  const util::Json committed = util::Json::parse_file(std::string(PCS_SOURCE_DIR) +
                                                      "/experiments/table1.expected.json");
  EXPECT_EQ(r1, committed.dump(2));
}

TEST(Experiment, EmittersCoverScalarsAndArrays) {
  ExperimentSpec spec = ExperimentSpec::parse(compute_only_experiment());
  ExperimentReport report = run_experiment(spec);
  const std::string csv = experiment_report_csv(report.json);
  EXPECT_EQ(csv.substr(0, 5), "label");
  EXPECT_NE(csv.find("\"ref,c10\",10,10"), std::string::npos);

  // Gnuplot: array series become columns; build one from a profile run.
  util::Json rep = obj();
  rep.set("columns", util::Json::parse(R"json(["t", "dirty", "peak"])json"));
  util::Json row = obj();
  row.set("label", "case0");
  row.set("values", util::Json::parse(R"json({"t": [0, 1], "dirty": [5, 6], "peak": 6})json"));
  rep.set("cases", util::Json{util::JsonArray{}}.push_back(std::move(row)));
  const std::string gp = experiment_report_gnuplot(rep);
  EXPECT_NE(gp.find("# case: case0"), std::string::npos);
  EXPECT_NE(gp.find("# peak = 6"), std::string::npos);
  EXPECT_NE(gp.find("# columns: t dirty"), std::string::npos);
  EXPECT_NE(gp.find("0 5"), std::string::npos);
  EXPECT_NE(gp.find("1 6"), std::string::npos);
}

TEST(Experiment, ResultJsonProjectsAllSimulatedQuantities) {
  scenario::RunResult result;
  wf::TaskResult task;
  task.name = "a0:task1";
  task.start = 1.0;
  task.read_start = 1.0;
  task.read_end = 2.5;
  task.compute_end = 4.0;
  task.write_end = 6.0;
  task.end = 6.0;
  result.tasks.push_back(task);
  result.makespan = 6.0;
  result.wall_seconds = 123.0;  // host-dependent: must NOT appear
  result.fair_share_solves = 7;
  cache::CacheSnapshot snap;
  snap.time = 2.0;
  snap.per_file["a0:file1"] = 42.0;
  result.profile.push_back(snap);

  util::Json doc = result_to_json(result);
  EXPECT_FALSE(doc.contains("wall_seconds"));
  EXPECT_EQ(extract_path(doc, "tasks.a0:task1.read_time").as_number(), 1.5);
  EXPECT_EQ(extract_path(doc, "tasks.a0:task1.write_time").as_number(), 2.0);
  EXPECT_EQ(extract_path(doc, "fair_share_solves").as_number(), 7.0);
  EXPECT_EQ(extract_path(doc, "profile.0.per_file.a0:file1").as_number(), 42.0);
}

}  // namespace
}  // namespace pcs::metrics
