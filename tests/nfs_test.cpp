// NFS semantics (the paper's Exp 3 configuration): writethrough server
// cache, client read cache, no client write cache, composite network+disk
// flows.  Client memory 1000 B at 100 B/s; server identical; link 40 B/s;
// server disk 10 B/s.
#include "storage/nfs.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pcs::storage {
namespace {

class NfsTest : public ::testing::Test {
 protected:
  NfsTest() : platform_(engine_) {
    client_ = platform_.add_host(test::small_host("client", 1000.0, 100.0));
    server_ = platform_.add_host(test::small_host("server", 1000.0, 100.0));
    plat::DiskSpec spec;
    spec.name = "export";
    spec.read_bw = 10.0;
    spec.write_bw = 10.0;
    disk_ = server_->add_disk(engine_, spec);
    platform_.add_link({"lan", 40.0, 0.0});
    platform_.add_route("client", "server", {"lan"});
  }

  NfsServer make_server(cache::CacheMode mode) {
    return NfsServer(engine_, *server_, *disk_, mode);
  }

  sim::Engine engine_;
  plat::Platform platform_;
  plat::Host* client_ = nullptr;
  plat::Host* server_ = nullptr;
  plat::Disk* disk_ = nullptr;
};

TEST_F(NfsTest, ServerRejectsWritebackCache) {
  EXPECT_THROW(NfsServer(engine_, *server_, *disk_, cache::CacheMode::Writeback), StorageError);
  EXPECT_THROW(NfsServer(engine_, *server_, *disk_, cache::CacheMode::ReadCache), StorageError);
}

TEST_F(NfsTest, WriteGoesAtDiskBandwidthAndPopulatesServerCache) {
  NfsServer server = make_server(cache::CacheMode::Writethrough);
  NfsMount mount(engine_, *client_, server, platform_.route_between("client", "server"),
                 cache::CacheMode::ReadCache);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mount.write_file("f", 100.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // Composite flow: bottleneck is the 10 B/s disk, not the 40 B/s link.
  EXPECT_DOUBLE_EQ(engine_.now(), 10.0);
  EXPECT_DOUBLE_EQ(server.fs().size_of("f"), 100.0);
  // Writethrough: server cache holds the file, clean.
  EXPECT_DOUBLE_EQ(server.memory_manager()->cached("f"), 100.0);
  EXPECT_DOUBLE_EQ(server.memory_manager()->dirty(), 0.0);
  // No client write cache.
  EXPECT_DOUBLE_EQ(mount.memory_manager()->cached("f"), 0.0);
}

TEST_F(NfsTest, ReadAfterWriteHitsServerCache) {
  NfsServer server = make_server(cache::CacheMode::Writethrough);
  NfsMount mount(engine_, *client_, server, platform_.route_between("client", "server"),
                 cache::CacheMode::ReadCache);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mount.write_file("f", 100.0, 50.0);
    double t0 = e.now();
    co_await mount.read_file("f", 50.0);
    // Server cache hit: composite link(40) + server memory(100) -> 40 B/s.
    EXPECT_DOUBLE_EQ(e.now() - t0, 2.5);
  };
  test::run_actor(engine_, body(engine_));
}

TEST_F(NfsTest, SecondReadHitsClientCache) {
  NfsServer server = make_server(cache::CacheMode::Writethrough);
  NfsMount mount(engine_, *client_, server, platform_.route_between("client", "server"),
                 cache::CacheMode::ReadCache);
  server.fs().create("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    double t0 = e.now();
    co_await mount.read_file("f", 50.0);
    // Cold: server miss -> composite link+disk at 10 B/s = 10 s.
    EXPECT_DOUBLE_EQ(e.now() - t0, 10.0);
    mount.release_anonymous(100.0);
    t0 = e.now();
    co_await mount.read_file("f", 50.0);
    // Warm at the client: pure client memory read at 100 B/s = 1 s.
    EXPECT_DOUBLE_EQ(e.now() - t0, 1.0);
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mount.memory_manager()->cached("f"), 100.0);
  EXPECT_DOUBLE_EQ(server.memory_manager()->cached("f"), 100.0);
}

TEST_F(NfsTest, CachelessBaselineAlwaysMovesBytes) {
  NfsServer server = make_server(cache::CacheMode::None);
  NfsMount mount(engine_, *client_, server, platform_.route_between("client", "server"),
                 cache::CacheMode::None);
  EXPECT_EQ(server.memory_manager(), nullptr);
  EXPECT_EQ(mount.memory_manager(), nullptr);
  server.fs().create("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mount.read_file("f", 50.0);
    co_await mount.read_file("f", 50.0);  // same cost again
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(engine_.now(), 20.0);
}

TEST_F(NfsTest, SlowLinkBecomesTheBottleneck) {
  // Rebuild with a 5 B/s link: slower than the 10 B/s disk.
  plat::Platform p2(engine_);
  plat::Host* c2 = p2.add_host(test::small_host("c2", 1000.0, 100.0));
  plat::Host* s2 = p2.add_host(test::small_host("s2", 1000.0, 100.0));
  plat::DiskSpec spec;
  spec.name = "exp";
  spec.read_bw = 10.0;
  spec.write_bw = 10.0;
  plat::Disk* d2 = s2->add_disk(engine_, spec);
  p2.add_link({"slow", 5.0, 0.0});
  p2.add_route("c2", "s2", {"slow"});
  NfsServer server(engine_, *s2, *d2, cache::CacheMode::Writethrough);
  NfsMount mount(engine_, *c2, server, p2.route_between("c2", "s2"),
                 cache::CacheMode::ReadCache);
  server.fs().create("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mount.read_file("f", 100.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(engine_.now(), 20.0);  // 100 B at 5 B/s link
}

TEST_F(NfsTest, RouteLatencyChargedPerTransfer) {
  plat::Platform p2(engine_);
  plat::Host* c2 = p2.add_host(test::small_host("c3", 1000.0, 100.0));
  plat::Host* s2 = p2.add_host(test::small_host("s3", 1000.0, 100.0));
  plat::DiskSpec spec;
  spec.name = "exp";
  spec.read_bw = 10.0;
  spec.write_bw = 10.0;
  plat::Disk* d2 = s2->add_disk(engine_, spec);
  p2.add_link({"lagged", 40.0, 0.25});
  p2.add_route("c3", "s3", {"lagged"});
  NfsServer server(engine_, *s2, *d2, cache::CacheMode::Writethrough);
  NfsMount mount(engine_, *c2, server, p2.route_between("c3", "s3"),
                 cache::CacheMode::ReadCache);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mount.write_file("f", 100.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // Two chunks, each 0.25 s latency + 5 s disk-bound transfer.
  EXPECT_DOUBLE_EQ(engine_.now(), 10.5);
}

TEST_F(NfsTest, WarmFilePopulatesServerCache) {
  NfsServer server = make_server(cache::CacheMode::Writethrough);
  NfsMount mount(engine_, *client_, server, platform_.route_between("client", "server"),
                 cache::CacheMode::ReadCache);
  server.fs().create("staged", 100.0);
  server.warm_file("staged");
  EXPECT_DOUBLE_EQ(server.memory_manager()->cached("staged"), 100.0);
  EXPECT_DOUBLE_EQ(server.memory_manager()->dirty(), 0.0);
  server.warm_file("staged");  // idempotent
  EXPECT_DOUBLE_EQ(server.memory_manager()->cached("staged"), 100.0);
  EXPECT_THROW(server.warm_file("ghost"), StorageError);

  auto body = [&](sim::Engine& e) -> sim::Task<> {
    double t0 = e.now();
    co_await mount.read_file("staged", 50.0);
    // Server cache hit from the first byte: link+memory, not disk.
    EXPECT_DOUBLE_EQ(e.now() - t0, 2.5);
  };
  test::run_actor(engine_, body(engine_));
}

TEST_F(NfsTest, WarmFileOnCachelessServerIsNoop) {
  NfsServer server = make_server(cache::CacheMode::None);
  server.fs().create("f", 10.0);
  EXPECT_NO_THROW(server.warm_file("f"));
}

TEST_F(NfsTest, WritebackClientCachesWritesAndFlushesRemotely) {
  // Extension: async-NFS client (the abstract's "writeback ... for
  // network-based filesystems").
  cache::CacheParams params;
  params.dirty_expire = 5.0;
  params.flush_period = 1.0;
  NfsServer server = make_server(cache::CacheMode::Writethrough);
  NfsMount mount(engine_, *client_, server, platform_.route_between("client", "server"),
                 cache::CacheMode::Writeback, params);
  mount.start_periodic_flush();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    double t0 = e.now();
    co_await mount.write_file("f", 100.0, 50.0);
    // Below the dirty limit: client memory speed (100 B at 100 B/s).
    EXPECT_DOUBLE_EQ(e.now() - t0, 1.0);
    EXPECT_DOUBLE_EQ(mount.memory_manager()->dirty(), 100.0);
    co_await e.sleep(20.0);  // periodic flusher pushes it to the server
    EXPECT_DOUBLE_EQ(mount.memory_manager()->dirty(), 0.0);
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(server.fs().size_of("f"), 100.0);
}

}  // namespace
}  // namespace pcs::storage
