// The observability layer (obs/): the metric sampler is pure observation
// and its timeline is byte-stable across runs and solver thread counts; the
// engine self-profiler never leaks wall-clock into simulated results; the
// Chrome-trace exporter lowers a recorded log into valid trace-event JSON;
// and experiments can address timeline columns via "source": "timeline".
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "metrics/experiment.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "tracelog/recorder.hpp"
#include "util/json.hpp"

#ifndef PCS_SOURCE_DIR
#define PCS_SOURCE_DIR "."
#endif

namespace pcs {
namespace {

using scenario::RunOptions;
using scenario::RunResult;
using scenario::ScenarioSpec;
using scenario::run_scenario;

util::Json obj() { return util::Json{util::JsonObject{}}; }

util::Json node_platform() {
  return util::Json::parse(R"json({
    "hosts": [
      {"name": "node0", "speed_gflops": 1, "cores": 8, "ram": "32 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [{"name": "ssd0", "read_bw_MBps": 510, "write_bw_MBps": 420}]}
    ]
  })json");
}

/// A cached synthetic pipeline busy enough that every gauge family moves:
/// cache fills and flushes, tasks overlap, and the solver runs repeatedly.
util::Json sampled_doc(double interval = 5.0) {
  util::Json doc = obj();
  doc.set("name", "sampled");
  doc.set("platform", node_platform());
  doc.set("workload", obj()
                          .set("type", "synthetic")
                          .set("input_size", "4 GB")
                          .set("instances", 3)
                          .set("stagger", 10.0));
  if (interval > 0.0) doc.set("metrics", obj().set("interval", interval));
  return doc;
}

/// The simulated quantities that define "same run": makespan, every task's
/// phase boundaries, and the final cache state.  Engine counters are
/// deliberately NOT compared here — the sampler daemon adds timer events,
/// so scheduling_points may legitimately differ while the simulation's
/// observable results stay bit-identical.
void expect_same_simulation(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (const wf::TaskResult& want : b.tasks) {
    const wf::TaskResult& got = a.task(want.name);
    EXPECT_EQ(got.start, want.start) << want.name;
    EXPECT_EQ(got.read_start, want.read_start) << want.name;
    EXPECT_EQ(got.read_end, want.read_end) << want.name;
    EXPECT_EQ(got.compute_end, want.compute_end) << want.name;
    EXPECT_EQ(got.write_end, want.write_end) << want.name;
    EXPECT_EQ(got.end, want.end) << want.name;
  }
  EXPECT_EQ(a.final_state.cached, b.final_state.cached);
  EXPECT_EQ(a.final_state.dirty, b.final_state.dirty);
}

// --- MetricsRegistry unit behaviour ----------------------------------------

TEST(MetricsRegistry, RejectsDotsAndDuplicates) {
  obs::MetricsRegistry reg;
  reg.register_gauge("store/cached_bytes", [] { return 1.0; });
  EXPECT_THROW(reg.register_gauge("store/cached_bytes", [] { return 2.0; }),
               obs::MetricsError);
  EXPECT_THROW(reg.register_gauge("store.cached", [] { return 0.0; }),
               obs::MetricsError);
}

TEST(MetricsRegistry, SealsOnFirstSampleAndSortsColumns) {
  obs::MetricsRegistry reg;
  reg.register_gauge("z/late", [] { return 26.0; });
  reg.register_gauge("a/early", [] { return 1.0; });
  reg.sample(0.0);
  EXPECT_THROW(reg.register_gauge("m/mid", [] { return 13.0; }), obs::MetricsError);
  // Re-sampling the same virtual time collapses to one row (the closing
  // sample may coincide with the last periodic tick).
  reg.sample(0.0);
  reg.sample(2.0);
  EXPECT_EQ(reg.sample_count(), 2u);

  const util::Json doc = reg.timeline(2.0);
  EXPECT_EQ(doc.at("interval").as_number(), 2.0);
  EXPECT_EQ(doc.at("time").size(), 2u);
  // Column order in the dump is sorted by name regardless of registration
  // order (util::JsonObject is an ordered map, but the registry sorts too
  // so row storage and document agree).
  const std::string bytes = doc.dump();
  EXPECT_LT(bytes.find("a/early"), bytes.find("z/late"));
  EXPECT_EQ(doc.at("metrics").at("a/early").at(0).as_number(), 1.0);
  EXPECT_EQ(doc.at("metrics").at("z/late").at(1).as_number(), 26.0);
}

// --- Sampler determinism and purity ----------------------------------------

TEST(ObsTimeline, RunToRunByteIdentical) {
  ScenarioSpec spec = ScenarioSpec::parse(sampled_doc());
  RunResult first = run_scenario(spec);
  RunResult second = run_scenario(spec);
  ASSERT_FALSE(first.timeline.is_null());
  EXPECT_EQ(first.timeline.dump(2), second.timeline.dump(2));
  expect_same_simulation(second, first);
}

TEST(ObsTimeline, SolverThreadsInvariant) {
  util::Json doc = sampled_doc();
  ScenarioSpec serial = ScenarioSpec::parse(doc);
  doc.set("solver_threads", 8);
  ScenarioSpec threaded = ScenarioSpec::parse(doc);
  RunResult a = run_scenario(serial);
  RunResult b = run_scenario(threaded);
  ASSERT_FALSE(a.timeline.is_null());
  EXPECT_EQ(a.timeline.dump(2), b.timeline.dump(2));
  expect_same_simulation(b, a);
}

TEST(ObsTimeline, SamplerIsPureObservation) {
  RunResult sampled = run_scenario(ScenarioSpec::parse(sampled_doc()));
  RunResult plain = run_scenario(ScenarioSpec::parse(sampled_doc(0.0)));
  ASSERT_FALSE(sampled.timeline.is_null());
  EXPECT_TRUE(plain.timeline.is_null());
  expect_same_simulation(sampled, plain);
}

TEST(ObsTimeline, CarriesTheExpectedColumns) {
  RunResult result = run_scenario(ScenarioSpec::parse(sampled_doc()));
  const util::Json& metrics = result.timeline.at("metrics");
  for (const char* name :
       {"engine/running_activities", "engine/scheduling_points", "tasks/live",
        "tasks/completed", "store/cached_bytes", "store/dirty_bytes",
        "store/read_bytes", "store/write_bytes", "store/flushed_bytes"}) {
    EXPECT_TRUE(metrics.contains(name)) << name;
    EXPECT_EQ(metrics.at(name).size(), result.timeline.at("time").size()) << name;
  }
  // The run writes 3 x 4 GB through the cache: dirty bytes must actually
  // move at some sample, and completed tasks must end at the task count.
  const util::JsonArray& dirty = metrics.at("store/dirty_bytes").as_array();
  bool saw_dirty = false;
  for (const util::Json& v : dirty) saw_dirty |= v.as_number() > 0.0;
  EXPECT_TRUE(saw_dirty);
  EXPECT_EQ(metrics.at("tasks/completed").as_array().back().as_number(),
            static_cast<double>(result.tasks.size()));
  // The closing sample is taken at the makespan.
  EXPECT_EQ(result.timeline.at("time").as_array().back().as_number(),
            result.makespan);
}

TEST(ObsTimeline, GoldenQuickstartTimeline) {
  // The committed timeline is what `pcs_cli run scenarios/quickstart.json
  // --metrics-interval 2 --timeline ...` writes; CI re-derives it at
  // --jobs/solver_threads variants and diffs.  Regenerate with that command
  // if the schema changes deliberately.
  ScenarioSpec spec =
      ScenarioSpec::from_file(PCS_SOURCE_DIR "/scenarios/quickstart.json");
  spec.metrics_interval = 2.0;
  RunResult result = run_scenario(spec);
  std::ifstream in(PCS_SOURCE_DIR "/scenarios/timelines/quickstart.timeline.json");
  ASSERT_TRUE(in.good()) << "missing committed scenarios/timelines/quickstart.timeline.json";
  std::stringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(result.timeline.dump(2) + "\n", committed.str());
}

TEST(ObsTimeline, PrototypeSimulatorCannotSample) {
  util::Json doc = sampled_doc();
  doc.set("simulator", "prototype");
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(doc)), scenario::ScenarioError);
}

// --- Self-profiler ----------------------------------------------------------

TEST(ObsProfiler, AttachingTheProfilerIsPureObservation) {
  ScenarioSpec spec = ScenarioSpec::parse(sampled_doc(0.0));
  RunResult plain = run_scenario(spec);
  obs::EngineProfile profile;
  RunOptions options;
  options.profile = &profile;
  RunResult profiled = run_scenario(spec, options);
  expect_same_simulation(profiled, plain);
  // The profiler measured real work: the engine dispatched coroutines and
  // recomputed rates at least once per scheduling point batch.
  EXPECT_GT(profile.recompute_rates.count, 0u);
  EXPECT_GT(profile.bfs.count, 0u);
  EXPECT_GT(profile.dispatch.count, 0u);
  EXPECT_GE(profile.recompute_rates.seconds, profile.bfs.seconds);
  // Wall-clock stays quarantined: nothing in the simulated result depends
  // on the profile, and the profile's engine counters match the run's.
  EXPECT_EQ(plain.fair_share_solves, profiled.fair_share_solves);
}

TEST(ObsProfiler, ReportAndJsonAgree) {
  obs::EngineProfile profile;
  profile.recompute_rates.add(0.5);
  profile.bfs.add(0.1);
  profile.ensure_slots(2);
  profile.slot_solve[0].add(0.2);
  const util::Json j = profile.to_json();
  EXPECT_EQ(j.at("recompute_rates").at("count").as_number(), 1.0);
  EXPECT_EQ(j.at("recompute_rates").at("seconds").as_number(), 0.5);
  EXPECT_EQ(j.at("slot_solve").size(), 2u);
  const std::string text = profile.report();
  EXPECT_NE(text.find("recompute_rates"), std::string::npos);
  EXPECT_NE(text.find("bfs"), std::string::npos);
}

// --- Chrome trace export ----------------------------------------------------

TEST(ObsChromeTrace, LowersARecordedRunIntoSpans) {
  ScenarioSpec spec = ScenarioSpec::parse(sampled_doc(0.0));
  tracelog::TaskLogRecorder recorder(nullptr, /*keep_in_memory=*/true);
  RunOptions options;
  options.recorder = &recorder;
  RunResult result = run_scenario(spec, options);

  const util::Json doc = obs::chrome_trace(recorder.log());
  ASSERT_TRUE(doc.contains("traceEvents"));
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  EXPECT_GT(events.size(), result.tasks.size());
  std::size_t spans = 0, metadata = 0;
  bool saw_read_phase = false, saw_io = false;
  for (const util::Json& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      const std::string name = e.at("name").as_string();
      if (name == "read") saw_read_phase = true;
      if (e.contains("args") && e.at("args").contains("bytes")) saw_io = true;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_GT(spans, 0u);
  EXPECT_GT(metadata, 0u);  // process/thread names for Perfetto lanes
  EXPECT_TRUE(saw_read_phase);
  EXPECT_TRUE(saw_io);
  // The document round-trips through the JSON parser (what CI validates
  // for the committed nighres log).
  EXPECT_NO_THROW((void)util::Json::parse(doc.dump(2)));
}

TEST(ObsChromeTrace, CommittedNighresLogExports) {
  tracelog::TaskLog log = tracelog::TaskLog::from_file(
      PCS_SOURCE_DIR "/scenarios/traces/nighres_run.jsonl");
  log.validate();
  const util::Json doc = obs::chrome_trace(log);
  EXPECT_GT(doc.at("traceEvents").size(), 0u);
  const util::Json reparsed = util::Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.at("traceEvents").size(), doc.at("traceEvents").size());
}

// --- Experiments over timelines ---------------------------------------------

TEST(ObsExperiment, TimelineSourceFeedsDerivedOps) {
  // An experiment whose series read the sampled timeline: the time-weighted
  // mean of dirty bytes tracks the write volume across the sweep axis.
  util::Json spec_doc = obj();
  spec_doc.set("name", "timeline_exp");
  util::Json sweep = obj();
  sweep.set("base", sampled_doc());
  util::Json axis = obj();
  axis.set("path", "workload.input_size");
  util::Json values{util::JsonArray{}};
  values.push_back("4 GB");
  values.push_back("512 MB");
  axis.set("values", std::move(values));
  util::Json grid{util::JsonArray{}};
  grid.push_back(std::move(axis));
  sweep.set("grid", std::move(grid));
  spec_doc.set("sweep", std::move(sweep));

  util::Json series{util::JsonArray{}};
  series.push_back(obj().set("name", "t").set("source", "timeline").set("path", "time"));
  series.push_back(obj()
                       .set("name", "dirty")
                       .set("source", "timeline")
                       .set("path", "metrics.store/dirty_bytes"));
  spec_doc.set("series", std::move(series));
  util::Json derived{util::JsonArray{}};
  derived.push_back(obj()
                        .set("name", "mean_dirty")
                        .set("op", "time_weighted_mean")
                        .set("x", "t")
                        .set("y", "dirty"));
  spec_doc.set("derived", std::move(derived));

  metrics::ExperimentSpec spec = metrics::ExperimentSpec::parse(spec_doc);
  metrics::ExperimentReport report = metrics::run_experiment(spec);
  ASSERT_TRUE(report.cases_ok);
  const util::JsonArray& cases = report.json.at("cases").as_array();
  ASSERT_EQ(cases.size(), 2u);
  const double big = cases[0].at("values").at("mean_dirty").as_number();
  const double small = cases[1].at("values").at("mean_dirty").as_number();
  EXPECT_GT(big, 0.0);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small);
}

TEST(ObsExperiment, MissingTimelineIsAClearError) {
  // "source": "timeline" against a scenario that never sampled: the error
  // names the fix instead of silently yielding nulls.
  util::Json spec_doc = obj();
  spec_doc.set("name", "no_timeline");
  util::Json sweep = obj();
  sweep.set("base", sampled_doc(0.0));
  util::Json cases{util::JsonArray{}};
  cases.push_back(obj().set("label", "only").set("overrides", obj()));
  sweep.set("cases", std::move(cases));
  spec_doc.set("sweep", std::move(sweep));
  util::Json series{util::JsonArray{}};
  series.push_back(obj().set("name", "t").set("source", "timeline").set("path", "time"));
  spec_doc.set("series", std::move(series));
  metrics::ExperimentSpec spec = metrics::ExperimentSpec::parse(spec_doc);
  try {
    (void)metrics::run_experiment(spec);
    FAIL() << "expected MetricsError";
  } catch (const metrics::MetricsError& e) {
    EXPECT_NE(std::string(e.what()).find("metrics"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace pcs
