// Tests that pin the implementation to specific sentences of the paper —
// each test cites the behaviour it checks (Section III unless noted).
#include <gtest/gtest.h>

#include "pagecache/io_controller.hpp"
#include "pagecache/memory_manager.hpp"
#include "test_helpers.hpp"

namespace pcs::cache {
namespace {

class PaperSemanticsTest : public ::testing::Test {
 protected:
  PaperSemanticsTest()
      : store_(engine_, 10.0, 10.0),
        mem_read_(engine_.new_resource("mem:rd", 100.0)),
        mem_write_(engine_.new_resource("mem:wr", 100.0)),
        mm_(engine_, CacheParams{}, 1000.0, mem_read_, mem_write_, store_) {}

  sim::Engine engine_;
  test::FakeStore store_;
  sim::Resource* mem_read_;
  sim::Resource* mem_write_;
  MemoryManager mm_;
};

// "The first time they are accessed, blocks are added to the inactive
// list."
TEST_F(PaperSemanticsTest, FirstAccessLandsInInactiveList) {
  mm_.add_to_cache("f", 100.0);
  EXPECT_DOUBLE_EQ(mm_.inactive_list().file_bytes("f"), 100.0);
  EXPECT_DOUBLE_EQ(mm_.active_list().file_bytes("f"), 0.0);
}

// "On subsequent accesses, blocks of the inactive list are moved to the
// top of the active list."
TEST_F(PaperSemanticsTest, SecondAccessPromotes) {
  mm_.add_to_cache("f", 90.0);
  double served = mm_.touch_cached("f", 90.0);
  EXPECT_DOUBLE_EQ(served, 90.0);
  EXPECT_GT(mm_.active_list().file_bytes("f"), 0.0);
}

// Figure 3: "data from the inactive list is read before data from the
// active list".
TEST_F(PaperSemanticsTest, InactiveConsumedBeforeActive) {
  // Build: 100 B of f in inactive (fresh), 100 B of f in active (promoted).
  mm_.add_to_cache("f", 100.0);
  mm_.touch_cached("f", 100.0);  // all of it active (then rebalanced 2:1)
  mm_.add_to_cache("f", 100.0);  // another fresh 100 B in inactive
  const double inactive_before = mm_.inactive_list().file_bytes("f");
  ASSERT_GT(inactive_before, 0.0);
  // Read 50 B: must come from the inactive list first.
  mm_.touch_cached("f", 50.0);
  // The touched 50 B moved out of inactive into active (modulo balancing,
  // which only demotes LRU *active* data).
  EXPECT_LE(mm_.inactive_list().file_bytes("f"), inactive_before - 50.0 + 1.0 + 100.0 / 3.0);
}

// "If these blocks are clean, we merge them together" / "If the blocks are
// dirty, we move them independently ... to preserve their entry time."
TEST_F(PaperSemanticsTest, CleanMergeDirtyIndependent) {
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    mm_.add_to_cache("f", 50.0);           // clean
    co_await e.sleep(1.0);
    mm_.add_to_cache("f", 50.0);           // clean
    co_await e.sleep(1.0);
    co_await mm_.write_to_cache("f", 40.0);  // dirty, entry time 2
    co_await e.sleep(8.0);
    mm_.touch_cached("f", 140.0);          // read everything cached
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // One merged clean block (100 B) and the dirty block with entry time 2
  // (balancing may demote either back to the inactive list; scan both).
  int clean_blocks = 0;
  int dirty_blocks = 0;
  for (const LruList* list : {&mm_.active_list(), &mm_.inactive_list()}) {
    for (const DataBlock& b : *list) {
      if (b.file != "f") continue;
      if (b.dirty) {
        ++dirty_blocks;
        EXPECT_NEAR(b.entry_time, 2.0, 0.5);    // preserved
        EXPECT_NEAR(b.last_access, 10.0, 0.5);  // refreshed
      } else {
        ++clean_blocks;
      }
    }
  }
  EXPECT_EQ(dirty_blocks, 1);
  EXPECT_LE(clean_blocks, 2);  // merged (then possibly split once by balancing)
}

// Algorithm 2, line 7: disk_read = min(cs, fs - cached(fn)) — a partially
// cached file reads only its uncached remainder from disk.
TEST_F(PaperSemanticsTest, PartialCacheReadsOnlyRemainder) {
  IOController io(engine_, CacheMode::Writeback, &mm_, store_);
  mm_.add_to_cache("f", 70.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.read_file("f", 100.0, 10.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_NEAR(store_.total_read(), 30.0, 0.1);
}

// Section III.A.3: flushing traverses "the sorted inactive list, then the
// sorted active list".
TEST_F(PaperSemanticsTest, FlushDrainsInactiveBeforeActive) {
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    mm_.add_to_cache("ballast", 200.0);  // keeps balancing from demoting "act"
    co_await mm_.write_to_cache("act", 50.0);
    co_await e.sleep(1.0);
    mm_.touch_cached("act", 50.0);  // dirty block now in the active list
    co_await mm_.write_to_cache("inact", 50.0);  // dirty block in inactive
    co_await mm_.flush(50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  ASSERT_EQ(store_.writes.size(), 1u);
  EXPECT_EQ(store_.writes[0].first, "inact");
}

// "In case the amount of data to flush requires that a block be partially
// flushed, the block is split in two blocks, one that is flushed and one
// that remains dirty."
TEST_F(PaperSemanticsTest, PartialFlushSplits) {
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm_.write_to_cache("f", 100.0);
    co_await mm_.flush(25.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm_.dirty(), 75.0);
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 100.0);
  EXPECT_EQ(mm_.inactive_list().block_count(), 2u);  // split, both retained
}

// "when called with negative arguments, functions flush and evict simply
// return and do not do anything."
TEST_F(PaperSemanticsTest, NegativeArgumentsAreNoops) {
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm_.write_to_cache("f", 50.0);
    co_await mm_.flush(-100.0);
    mm_.evict(-100.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm_.dirty(), 50.0);
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 50.0);
  EXPECT_TRUE(store_.writes.empty());
}

// "The overhead of the cache eviction algorithm is not part of the
// simulated time."
TEST_F(PaperSemanticsTest, EvictionTakesNoSimulatedTime) {
  mm_.add_to_cache("f", 500.0);
  const double before = engine_.now();
  mm_.evict(400.0);
  EXPECT_DOUBLE_EQ(engine_.now(), before);
}

// Section II.A: "Only data that has been persisted to storage (clean
// pages) can be flagged for eviction."
TEST_F(PaperSemanticsTest, DirtyDataIsNeverEvicted) {
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm_.write_to_cache("f", 100.0);
    mm_.evict(1000.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 100.0);
  EXPECT_DOUBLE_EQ(mm_.dirty(), 100.0);
}

// "a dirty block in our model is considered expired if the duration since
// its entry time is longer than a predefined expiration time" — the
// expiration clock is the ENTRY time, not the last access.
TEST_F(PaperSemanticsTest, ExpirationUsesEntryTimeNotAccessTime) {
  CacheParams params;
  params.dirty_expire = 30.0;
  params.flush_period = 5.0;
  MemoryManager mm(engine_, params, 1000.0, mem_read_, mem_write_, store_);
  mm.start_periodic_flush();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mm.write_to_cache("f", 100.0);
    // Keep touching the block; access time stays fresh but entry ages.
    for (int i = 0; i < 8; ++i) {
      co_await e.sleep(5.0);
      mm.touch_cached("f", 100.0);
    }
    // 40 s elapsed > 30 s expiry: mostly flushed despite constant accesses
    // (a balancing split may briefly hide a fragment from one flusher
    // pass).  Access-time-based expiry would keep all 100 B dirty here.
    EXPECT_LT(mm.dirty(), 50.0);
    co_await e.sleep(15.0);  // idle: every fragment expires and flushes
    EXPECT_DOUBLE_EQ(mm.dirty(), 0.0);
  };
  test::run_actor(engine_, body(engine_));
}

// Section III.A.1: "our simulator limits the size of the active list to
// twice the size of the inactive list".
TEST_F(PaperSemanticsTest, ActiveListBounded) {
  for (int i = 0; i < 5; ++i) {
    std::string file = "f" + std::to_string(i);
    mm_.add_to_cache(file, 100.0);
    mm_.touch_cached(file, 100.0);
    EXPECT_LE(mm_.active_list().total(), 2.0 * mm_.inactive_list().total() + 1.0) << i;
  }
}

// "Both lists operate using LRU eviction policies, meaning that data that
// has not be[en] accessed recently will be moved first."
TEST_F(PaperSemanticsTest, EvictionIsLeastRecentlyUsedFirst) {
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    mm_.add_to_cache("old", 100.0);
    co_await e.sleep(5.0);
    mm_.add_to_cache("mid", 100.0);
    co_await e.sleep(5.0);
    mm_.add_to_cache("new", 100.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  mm_.evict(150.0);
  EXPECT_DOUBLE_EQ(mm_.cached("old"), 0.0);   // evicted entirely
  EXPECT_DOUBLE_EQ(mm_.cached("mid"), 50.0);  // split: half evicted
  EXPECT_DOUBLE_EQ(mm_.cached("new"), 100.0);  // untouched
}

// Section III.A.1: "a given file can have multiple data blocks in page
// cache" and a file "can be partially cached, completely cached, or not
// cached at all" — the accounting reflects all three states.
TEST_F(PaperSemanticsTest, PartialCompleteAndAbsentFiles) {
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 0.0);  // not cached
  mm_.add_to_cache("f", 30.0);
  mm_.add_to_cache("f", 40.0);             // two blocks of the same file
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 70.0);  // partially cached (of, say, 100)
  mm_.add_to_cache("f", 30.0);
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 100.0);  // completely cached
  EXPECT_GE(mm_.inactive_list().block_count(), 3u);
}

// Section III.B (writethrough): "simply simulates a disk write with the
// amount of data passed in, then evicts cache if needed and adds the
// written data to the cache."
TEST_F(PaperSemanticsTest, WritethroughOrderOfOperations) {
  IOController io(engine_, CacheMode::Writethrough, &mm_, store_);
  mm_.allocate_anonymous(850.0);  // only 150 B left for cache
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.write_file("f", 100.0, 100.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(store_.written_of("f"), 100.0);  // full write to disk
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 100.0);         // then cached
  EXPECT_DOUBLE_EQ(mm_.dirty(), 0.0);               // clean (persisted)
}

// Section III.A.2: "For file writes, we assume that all data to be written
// is uncached" — rewriting a cached file creates new dirty blocks rather
// than updating existing ones.
TEST_F(PaperSemanticsTest, RewriteCreatesNewDirtyData) {
  IOController io(engine_, CacheMode::Writeback, &mm_, store_);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await io.write_file("f", 100.0, 50.0);
    co_await io.write_file("f", 100.0, 50.0);  // rewrite
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // Both writes created cache blocks (the model does not deduplicate).
  EXPECT_DOUBLE_EQ(mm_.cached("f"), 200.0);
}

}  // namespace
}  // namespace pcs::cache
