// The parallel component solver's stress and unit coverage (ISSUE 7).
//
// engine_determinism_test pins the bit-identity contract on small shapes;
// this file drives the worker pool hard: the ~100k-actor mega_tenant
// scenario across solver_threads in {1, 2, 8}, auto thread resolution,
// the full-solve cross-check running on top of parallel solves, host-crash
// disruption mid-run, and SolverPool itself (work distribution, exception
// propagation, reuse across batches).
//
// Size scaling: the full 100-tenant scenario is a Release-mode benchmark
// shape.  Under ThreadSanitizer (~10x slowdown, which is also the build
// that matters most here) and in Debug-invariant builds the tenant count
// drops to 10 — the scheduling-point structure is identical, only the
// component count per point shrinks.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/corebench.hpp"
#include "simcore/engine.hpp"
#include "simcore/solver_pool.hpp"
#include "simcore/task.hpp"

namespace pcs {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(PCS_DEBUG_INVARIANTS)
constexpr int kMegaTenants = 10;
#else
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kMegaTenants = 10;
#else
constexpr int kMegaTenants = 100;
#endif
#else
constexpr int kMegaTenants = 100;
#endif
#endif

TEST(ParallelSolver, MegaTenantBitIdenticalAcrossThreadCounts) {
  exp::CoreScenarioConfig config = exp::mega_tenant_config(kMegaTenants);
  config.solver_threads = 1;
  const exp::CoreScenarioResult serial = exp::run_core_scenario(config);
  EXPECT_EQ(serial.activities,
            static_cast<std::uint64_t>(1000) * kMegaTenants * 3);
  for (int threads : {2, 8}) {
    config.solver_threads = threads;
    const exp::CoreScenarioResult parallel = exp::run_core_scenario(config);
    EXPECT_EQ(serial.scheduling_points, parallel.scheduling_points) << "threads=" << threads;
    EXPECT_EQ(serial.components_solved, parallel.components_solved) << "threads=" << threads;
    EXPECT_EQ(serial.final_vtime, parallel.final_vtime) << "threads=" << threads;  // makespan
    EXPECT_EQ(serial.completion_checksum, parallel.completion_checksum)  // per-task timings
        << "threads=" << threads;
    EXPECT_EQ(serial.checksum_ns, parallel.checksum_ns) << "threads=" << threads;  // ns-granular
    // The pool must actually have engaged — otherwise this test proves
    // nothing about the parallel path.
    EXPECT_GT(parallel.parallel_solves, 0u) << "threads=" << threads;
  }
}

TEST(ParallelSolver, MegaTenantRunTwiceAtSameWidthIsBitIdentical) {
  exp::CoreScenarioConfig config = exp::mega_tenant_config(kMegaTenants);
  config.solver_threads = 8;
  const exp::CoreScenarioResult a = exp::run_core_scenario(config);
  const exp::CoreScenarioResult b = exp::run_core_scenario(config);
  EXPECT_EQ(a.checksum_ns, b.checksum_ns);
  EXPECT_EQ(a.final_vtime, b.final_vtime);
  EXPECT_EQ(a.completion_checksum, b.completion_checksum);
  EXPECT_EQ(a.scheduling_points, b.scheduling_points);
}

TEST(ParallelSolver, CrossCheckPassesOnParallelSolves) {
  // The full-solve cross-check re-solves the whole platform after every
  // scheduling point on the driving thread; with the pool engaged it
  // proves the parallel per-component solves merged into exactly the
  // rates a from-scratch serial solve produces.
  exp::CoreScenarioConfig config = exp::mega_tenant_config(4);
  config.rounds = 2;
  config.solver_threads = 4;
  config.solver_cross_check = true;
  const exp::CoreScenarioResult checked = exp::run_core_scenario(config);
  config.solver_cross_check = false;
  const exp::CoreScenarioResult plain = exp::run_core_scenario(config);
  EXPECT_EQ(checked.checksum_ns, plain.checksum_ns);
  EXPECT_EQ(checked.final_vtime, plain.final_vtime);
}

TEST(ParallelSolver, HostCrashMidRunKeepsMergeOrderDeterministic) {
  exp::CoreScenarioConfig config = exp::mega_tenant_config(kMegaTenants);
  config.solver_threads = 1;
  const exp::CoreScenarioResult dry = exp::run_core_scenario(config);
  config.crash_time = dry.final_vtime / 2.0;
  config.crash_tenant = kMegaTenants / 2;
  const exp::CoreScenarioResult serial = exp::run_core_scenario(config);
  EXPECT_GT(serial.cancelled_activities, 0u);
  for (int threads : {2, 8}) {
    config.solver_threads = threads;
    const exp::CoreScenarioResult parallel = exp::run_core_scenario(config);
    EXPECT_EQ(serial.cancelled_activities, parallel.cancelled_activities)
        << "threads=" << threads;
    EXPECT_EQ(serial.checksum_ns, parallel.checksum_ns) << "threads=" << threads;
    EXPECT_EQ(serial.final_vtime, parallel.final_vtime) << "threads=" << threads;
  }
}

TEST(ParallelSolver, AutoThreadsResolvesToHardwareConcurrency) {
  sim::Engine engine;
  EXPECT_EQ(engine.solver_threads(), 1u);
  EXPECT_EQ(engine.resolved_solver_threads(), 1u);
  engine.set_solver_threads(0);
  EXPECT_EQ(engine.solver_threads(), 0u);  // the requested value is kept
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  EXPECT_EQ(engine.resolved_solver_threads(), hw);
  engine.set_solver_threads(3);
  EXPECT_EQ(engine.resolved_solver_threads(), 3u);
}

TEST(ParallelSolver, SerialEngineReportsNoParallelSolves) {
  exp::CoreScenarioConfig config = exp::mega_tenant_config(2);
  config.rounds = 1;
  config.solver_threads = 1;
  const exp::CoreScenarioResult r = exp::run_core_scenario(config);
  EXPECT_EQ(r.parallel_solves, 0u);
  EXPECT_GT(r.components_solved, 0u);
}

// --- SolverPool unit tests ------------------------------------------------

TEST(SolverPool, RunsEveryItemExactlyOnce) {
  sim::SolverPool pool(3);
  EXPECT_EQ(pool.slots(), 4u);
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.run(kItems, [&](std::size_t item, std::size_t slot) {
    ASSERT_LT(slot, 4u);
    hits[item].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST(SolverPool, ReusableAcrossBatchesAndEmptyRuns) {
  sim::SolverPool pool(2);
  std::atomic<int> total{0};
  pool.run(0, [&](std::size_t, std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0);
  for (int batch = 0; batch < 50; ++batch) {
    pool.run(7, [&](std::size_t, std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 350);
}

TEST(SolverPool, PropagatesWorkExceptionsToCaller) {
  sim::SolverPool pool(2);
  EXPECT_THROW(pool.run(16,
                        [](std::size_t item, std::size_t) {
                          if (item == 7) throw std::runtime_error("component 7 failed");
                        }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> total{0};
  pool.run(4, [&](std::size_t, std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 4);
}

TEST(SolverPool, DegeneratePoolRunsInline) {
  sim::SolverPool pool(0);  // caller-only: the solver_threads=1 shape
  EXPECT_EQ(pool.slots(), 1u);
  int count = 0;
  pool.run(5, [&](std::size_t, std::size_t slot) {
    EXPECT_EQ(slot, 0u);
    ++count;
  });
  EXPECT_EQ(count, 5);
  EXPECT_THROW(pool.run(1, [](std::size_t, std::size_t) { throw std::logic_error("x"); }),
               std::logic_error);
  pool.run(2, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count, 7);
}

}  // namespace
}  // namespace pcs
