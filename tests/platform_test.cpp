#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pcs::plat {
namespace {

TEST(Platform, AddAndLookupHosts) {
  sim::Engine engine;
  Platform platform(engine);
  Host* h = platform.add_host(test::small_host("node0", 1e9, 1e8));
  EXPECT_EQ(platform.host("node0"), h);
  EXPECT_EQ(platform.host_count(), 1u);
  EXPECT_THROW((void)platform.host("ghost"), PlatformError);
  EXPECT_THROW(platform.add_host(test::small_host("node0", 1e9, 1e8)), PlatformError);
}

TEST(Platform, HostValidation) {
  sim::Engine engine;
  Platform platform(engine);
  HostSpec bad = test::small_host("x", 1e9, 1e8);
  bad.cores = 0;
  EXPECT_THROW(platform.add_host(bad), PlatformError);
  bad = test::small_host("y", 1e9, 1e8);
  bad.ram = -1.0;
  EXPECT_THROW(platform.add_host(bad), PlatformError);
}

TEST(Platform, HostResourcesMatchSpec) {
  sim::Engine engine;
  Platform platform(engine);
  HostSpec spec = test::small_host("n", 8e9, 1e8);
  spec.speed = 2e9;
  spec.cores = 4;
  Host* h = platform.add_host(spec);
  EXPECT_DOUBLE_EQ(h->cpu()->capacity(), 8e9);  // speed * cores
  EXPECT_DOUBLE_EQ(h->mem_read_channel()->capacity(), 1e8);
  EXPECT_DOUBLE_EQ(h->mem_write_channel()->capacity(), 1e8);
}

TEST(Platform, DiskManagement) {
  sim::Engine engine;
  Platform platform(engine);
  Host* h = platform.add_host(test::small_host("n", 1e9, 1e8));
  DiskSpec spec;
  spec.name = "d0";
  spec.read_bw = 100.0;
  spec.write_bw = 50.0;
  Disk* d = h->add_disk(engine, spec);
  EXPECT_EQ(h->disk("d0"), d);
  EXPECT_DOUBLE_EQ(d->read_channel()->capacity(), 100.0);
  EXPECT_DOUBLE_EQ(d->write_channel()->capacity(), 50.0);
  EXPECT_THROW((void)h->disk("nope"), PlatformError);
  EXPECT_THROW(h->add_disk(engine, spec), PlatformError);  // duplicate
  DiskSpec bad = spec;
  bad.name = "d1";
  bad.read_bw = 0.0;
  EXPECT_THROW(h->add_disk(engine, bad), PlatformError);
}

TEST(Platform, DiskSymmetrization) {
  DiskSpec spec;
  spec.read_bw = 510.0;
  spec.write_bw = 420.0;
  DiskSpec sym = spec.symmetrized();
  EXPECT_DOUBLE_EQ(sym.read_bw, 465.0);
  EXPECT_DOUBLE_EQ(sym.write_bw, 465.0);
  HostSpec host;
  host.mem_read_bw = 6860.0;
  host.mem_write_bw = 2764.0;
  HostSpec msym = host.memory_symmetrized();
  EXPECT_DOUBLE_EQ(msym.mem_read_bw, 4812.0);
  EXPECT_DOUBLE_EQ(msym.mem_write_bw, 4812.0);
}

TEST(Platform, RoutesAreSymmetric) {
  sim::Engine engine;
  Platform platform(engine);
  platform.add_host(test::small_host("a", 1e9, 1e8));
  platform.add_host(test::small_host("b", 1e9, 1e8));
  platform.add_link({"l1", 100.0, 0.01});
  platform.add_link({"l2", 200.0, 0.02});
  platform.add_route("a", "b", {"l1", "l2"});
  EXPECT_TRUE(platform.has_route("a", "b"));
  EXPECT_TRUE(platform.has_route("b", "a"));
  EXPECT_FALSE(platform.has_route("a", "a"));
  const Route& route = platform.route_between("b", "a");
  EXPECT_EQ(route.links.size(), 2u);
  EXPECT_NEAR(route.latency(), 0.03, 1e-12);
  EXPECT_THROW((void)platform.route_between("a", "a"), PlatformError);
}

TEST(Platform, RouteValidation) {
  sim::Engine engine;
  Platform platform(engine);
  platform.add_host(test::small_host("a", 1e9, 1e8));
  EXPECT_THROW(platform.add_route("a", "missing", {}), PlatformError);
  platform.add_host(test::small_host("b", 1e9, 1e8));
  EXPECT_THROW(platform.add_route("a", "b", {"missing-link"}), PlatformError);
  EXPECT_THROW(platform.add_link({"bad", 0.0, 0.0}), PlatformError);
  EXPECT_THROW(platform.add_link({"bad", -5.0, 0.0}), PlatformError);
}

TEST(PlatformJson, FullDocument) {
  const char* doc = R"json({
    "hosts": [
      {"name": "c0", "speed_gflops": 2, "cores": 16, "ram": "128 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [{"name": "ssd", "read_bw_MBps": 510, "write_bw_MBps": 420,
                  "capacity": "450 GiB", "latency_s": 0.001}]},
      {"name": "s0", "cores": 8, "ram": 64000000000,
       "memory": {"read_bw_MBps": 4812, "write_bw_MBps": 4812}}
    ],
    "links": [{"name": "lan", "bw_MBps": 3000, "latency_s": 0.0001}],
    "routes": [{"src": "c0", "dst": "s0", "links": ["lan"]}]
  })json";
  sim::Engine engine;
  auto platform = Platform::from_json(engine, util::Json::parse(doc));
  Host* c0 = platform->host("c0");
  EXPECT_DOUBLE_EQ(c0->speed(), 2e9);
  EXPECT_EQ(c0->cores(), 16);
  EXPECT_DOUBLE_EQ(c0->ram(), 128e9);
  EXPECT_DOUBLE_EQ(c0->mem_read_channel()->capacity(), 6860e6);
  Disk* ssd = c0->disk("ssd");
  EXPECT_DOUBLE_EQ(ssd->capacity(), 450.0 * util::GiB);
  EXPECT_DOUBLE_EQ(ssd->latency(), 0.001);
  Host* s0 = platform->host("s0");
  EXPECT_DOUBLE_EQ(s0->speed(), 1e9);  // default 1 Gflops
  EXPECT_DOUBLE_EQ(s0->ram(), 64e9);   // numeric bytes accepted
  EXPECT_TRUE(platform->has_route("s0", "c0"));
  EXPECT_DOUBLE_EQ(platform->route_between("c0", "s0").links[0]->channel()->capacity(), 3000e6);
}

TEST(PlatformJson, MalformedDocuments) {
  sim::Engine engine;
  EXPECT_THROW(Platform::from_json(engine, util::Json::parse("{}")), util::JsonError);
  EXPECT_THROW(
      Platform::from_json(engine, util::Json::parse(R"({"hosts":[{"cores":2}]})")),
      util::JsonError);
  EXPECT_THROW(Platform::from_json_file(engine, "/nonexistent.json"), util::JsonError);
  // Route to an undeclared host is a platform error, not a JSON error.
  const char* bad_route = R"json({
    "hosts": [{"name": "a"}],
    "links": [{"name": "l", "bw_MBps": 10}],
    "routes": [{"src": "a", "dst": "zz", "links": ["l"]}]
  })json";
  EXPECT_THROW(Platform::from_json(engine, util::Json::parse(bad_route)), PlatformError);
}

TEST(PlatformJson, ToJsonRoundTripsTheClusterDocument) {
  const char* doc_text = R"json({
    "hosts": [
      {"name": "compute0", "speed_gflops": 1, "cores": 32, "ram": "250 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [{"name": "ssd0", "read_bw_MBps": 510, "write_bw_MBps": 420,
                  "capacity": "450 GiB", "latency_s": 0.001}]},
      {"name": "storage0", "speed_gflops": 2, "cores": 16,
       "disks": [{"name": "nfs-ssd", "read_bw_MBps": 515, "write_bw_MBps": 375}]}
    ],
    "links": [{"name": "lan", "bw_MBps": 3000, "latency_s": 0.0001}],
    "routes": [{"src": "compute0", "dst": "storage0", "links": ["lan"]}]
  })json";
  sim::Engine engine;
  auto platform = Platform::from_json(engine, util::Json::parse(doc_text));
  util::Json first = platform->to_json();

  sim::Engine engine2;
  auto reloaded = Platform::from_json(engine2, first);
  util::Json second = reloaded->to_json();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.dump(2), second.dump(2));

  // Spot-check that the serialization carries the loader's fields.
  EXPECT_DOUBLE_EQ(reloaded->host("compute0")->spec().mem_read_bw, 6860.0 * util::MB);
  EXPECT_DOUBLE_EQ(reloaded->host("compute0")->disk("ssd0")->spec().latency, 0.001);
  EXPECT_TRUE(reloaded->has_route("storage0", "compute0"));
}

TEST(PlatformJson, RandomizedSaveLoadSaveEquality) {
  util::Rng rng(20260727);
  for (int round = 0; round < 25; ++round) {
    sim::Engine engine;
    Platform platform(engine);
    const int host_count = 1 + static_cast<int>(rng.next_u64() % 4);
    std::vector<std::string> host_names;
    for (int h = 0; h < host_count; ++h) {
      HostSpec spec;
      spec.name = "h" + std::to_string(h);
      spec.speed = static_cast<double>(1 + rng.next_u64() % 8) * 1e9;
      spec.cores = 1 + static_cast<int>(rng.next_u64() % 64);
      spec.ram = static_cast<double>(rng.next_u64() % 512) * util::GiB;
      // Integer-MBps bandwidths, as the schema's fields are MBps-valued.
      spec.mem_read_bw = static_cast<double>(1 + rng.next_u64() % 10000) * util::MB;
      spec.mem_write_bw = static_cast<double>(1 + rng.next_u64() % 10000) * util::MB;
      Host* host = platform.add_host(spec);
      host_names.push_back(spec.name);
      const int disk_count = static_cast<int>(rng.next_u64() % 3);
      for (int d = 0; d < disk_count; ++d) {
        DiskSpec disk;
        disk.name = "d" + std::to_string(d);
        disk.read_bw = static_cast<double>(1 + rng.next_u64() % 2000) * util::MB;
        disk.write_bw = static_cast<double>(1 + rng.next_u64() % 2000) * util::MB;
        disk.capacity = static_cast<double>(rng.next_u64() % 1000) * util::GiB;
        disk.latency = static_cast<double>(rng.next_u64() % 10) * 1e-4;
        host->add_disk(engine, disk);
      }
    }
    const int link_count = static_cast<int>(rng.next_u64() % 3);
    std::vector<std::string> link_names;
    for (int l = 0; l < link_count; ++l) {
      LinkSpec link;
      link.name = "l" + std::to_string(l);
      link.bandwidth = static_cast<double>(1 + rng.next_u64() % 5000) * util::MB;
      link.latency = static_cast<double>(rng.next_u64() % 5) * 1e-5;
      platform.add_link(link);
      link_names.push_back(link.name);
    }
    if (!link_names.empty() && host_names.size() >= 2) {
      platform.add_route(host_names[0], host_names[1], {link_names[0]});
    }

    util::Json saved = platform.to_json();
    sim::Engine engine2;
    auto loaded = Platform::from_json(engine2, saved);
    util::Json saved_again = loaded->to_json();
    EXPECT_EQ(saved, saved_again) << "round " << round << ":\n" << saved.dump(2);
  }
}

TEST(PlatformJson, LoadJsonAddsIntoAnExistingPlatform) {
  sim::Engine engine;
  Platform platform(engine);
  platform.load_json(util::Json::parse(R"json({"hosts": [{"name": "a"}]})json"));
  platform.load_json(util::Json::parse(R"json({"hosts": [{"name": "b"}]})json"));
  EXPECT_EQ(platform.host_count(), 2u);
  // Colliding names still throw.
  EXPECT_THROW(platform.load_json(util::Json::parse(R"json({"hosts": [{"name": "a"}]})json")),
               PlatformError);
}

TEST(PlatformJson, CapacityChangePropagates) {
  sim::Engine engine;
  Platform platform(engine);
  Host* h = platform.add_host(test::small_host("n", 1e9, 1e8));
  DiskSpec spec;
  spec.name = "d";
  spec.read_bw = 100.0;
  spec.write_bw = 100.0;
  Disk* d = h->add_disk(engine, spec);
  d->read_channel()->set_capacity(50.0);
  EXPECT_DOUBLE_EQ(d->read_channel()->capacity(), 50.0);
}

}  // namespace
}  // namespace pcs::plat
