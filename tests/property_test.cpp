// Property-based sweeps over randomized workloads:
//   * MemoryManager/IOController invariants hold after every operation;
//   * the engine is deterministic under random concurrent workloads;
//   * the analytic prototype and the event-driven model agree exactly on
//     sequential workloads (the paper's pysim-vs-WRENCH-cache
//     cross-validation, as a test).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pagecache/io_controller.hpp"
#include "proto/analytic.hpp"
#include "storage/local_storage.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace pcs {
namespace {

// --- invariant preservation under random I/O --------------------------------

class RandomIoProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomIoProperty, InvariantsHoldAfterEveryOperation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  sim::Engine engine;
  auto host =
      std::make_unique<plat::Host>(engine, test::small_host("h", 10000.0, 100.0));
  plat::DiskSpec spec;
  spec.name = "d";
  spec.read_bw = 10.0;
  spec.write_bw = 10.0;
  plat::Disk* disk = host->add_disk(engine, spec);
  cache::CacheParams params;
  params.dirty_expire = rng.uniform(5.0, 50.0);
  params.flush_period = rng.uniform(1.0, 10.0);
  storage::LocalStorage st(engine, *host, *disk, cache::CacheMode::Writeback, params);
  st.start_periodic_flush();

  auto body = [&](sim::Engine& e) -> sim::Task<> {
    std::vector<std::string> files;
    double anon_held = 0.0;
    for (int step = 0; step < 40; ++step) {
      double roll = rng.next_double();
      if (roll < 0.35 || files.empty()) {
        std::string name = "f" + std::to_string(files.size());
        double size = rng.uniform(50.0, 1500.0);
        co_await st.write_file(name, size, rng.uniform(20.0, 200.0));
        files.push_back(name);
      } else if (roll < 0.7) {
        const std::string& name = files[rng.uniform_int(0, files.size() - 1)];
        // Keep the working set within memory (the model's documented
        // assumption); release before reading when it would overcommit.
        if (anon_held + st.fs().size_of(name) > 5000.0) {
          st.release_anonymous(anon_held);
          anon_held = 0.0;
        }
        co_await st.read_file(name, rng.uniform(20.0, 200.0));
        anon_held += st.fs().size_of(name);
      } else if (roll < 0.85) {
        co_await e.sleep(rng.uniform(0.1, 20.0));
      } else {
        st.release_anonymous(anon_held);
        anon_held = 0.0;
      }
      cache::MemoryManager* mm = st.memory_manager();
      // EXPECT (not ASSERT): gtest's fatal assertions `return;`, which is
      // ill-formed inside a coroutine.
      EXPECT_NO_THROW(mm->check_invariants()) << "step " << step;
      EXPECT_GE(mm->free_mem(), -1.0);
      EXPECT_NEAR(mm->free_mem() + mm->cached() + mm->anonymous(), mm->total_mem(), 1.0);
    }
  };
  test::run_actor(engine, body(engine));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIoProperty, ::testing::Range(0, 8));

// --- determinism --------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, ConcurrentWorkloadsReplayIdentically) {
  auto run_once = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    sim::Engine engine;
    auto host =
        std::make_unique<plat::Host>(engine, test::small_host("h", 10000.0, 100.0));
    plat::DiskSpec spec;
    spec.name = "d";
    spec.read_bw = 10.0;
    spec.write_bw = 10.0;
    plat::Disk* disk = host->add_disk(engine, spec);
    storage::LocalStorage st(engine, *host, *disk, cache::CacheMode::Writeback);
    st.start_periodic_flush();
    auto worker = [&st](sim::Engine& e, std::string name, double size, double delay,
                        double chunk) -> sim::Task<> {
      co_await e.sleep(delay);
      co_await st.write_file(name, size, chunk);
      co_await st.read_file(name, chunk);
      st.release_anonymous(size);
    };
    for (int i = 0; i < 6; ++i) {
      engine.spawn("w" + std::to_string(i),
                   worker(engine, "f" + std::to_string(i), rng.uniform(100.0, 800.0),
                          rng.uniform(0.0, 3.0), rng.uniform(20.0, 100.0)));
    }
    engine.run();
    return std::pair{engine.now(), engine.scheduling_points()};
  };
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 31 + 5;
  auto [t1, s1] = run_once(seed);
  auto [t2, s2] = run_once(seed);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_EQ(s1, s2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty, ::testing::Range(0, 6));

// --- prototype vs event-driven model agreement --------------------------------

struct Op {
  enum Kind { Read, Write, Compute, Release } kind;
  std::string file;
  double size;
  double chunk;
};

std::vector<Op> random_sequential_workload(util::Rng& rng) {
  std::vector<Op> ops;
  std::vector<std::pair<std::string, double>> files;
  double anon = 0.0;
  for (int i = 0; i < 25; ++i) {
    double roll = rng.next_double();
    if (roll < 0.35 || files.empty()) {
      std::string name = "w" + std::to_string(files.size());
      double size = rng.uniform(50.0, 900.0);
      files.emplace_back(name, size);
      ops.push_back({Op::Write, name, size, rng.uniform(25.0, 150.0)});
    } else if (roll < 0.65) {
      auto& [name, size] = files[rng.uniform_int(0, files.size() - 1)];
      // Keep the working set within memory — outside that envelope the two
      // implementations are allowed to clamp differently.
      if (anon + size > 2500.0) {
        ops.push_back({Op::Release, "", anon, 0.0});
        anon = 0.0;
      }
      ops.push_back({Op::Read, name, size, rng.uniform(25.0, 150.0)});
      anon += size;
    } else if (roll < 0.85) {
      ops.push_back({Op::Compute, "", rng.uniform(1.0, 30.0), 0.0});
    } else {
      ops.push_back({Op::Release, "", anon, 0.0});
      anon = 0.0;
    }
  }
  return ops;
}

class AgreementProperty : public ::testing::TestWithParam<int> {};

TEST_P(AgreementProperty, PrototypeMatchesEngineOnSequentialWorkloads) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 13);
  std::vector<Op> ops = random_sequential_workload(rng);

  // Background expiry flushing is the one modelling difference between the
  // two implementations (free in the prototype, bandwidth-shared in the
  // engine); disable it for exact agreement.
  cache::CacheParams params;
  params.dirty_expire = 1e12;

  // Prototype.
  proto::ProtoConfig config;
  config.total_mem = 5000.0;
  config.mem_read_bw = 100.0;
  config.mem_write_bw = 100.0;
  config.disk_read_bw = 10.0;
  config.disk_write_bw = 10.0;
  config.cache = params;
  proto::AnalyticSim psim(config);
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Read: psim.read_file(op.file, op.chunk); break;
      case Op::Write: psim.write_file(op.file, op.size, op.chunk); break;
      case Op::Compute: psim.compute(op.size); break;
      case Op::Release: psim.release_anonymous(op.size); break;
    }
  }

  // Event-driven model, same workload in one actor.
  sim::Engine engine;
  auto host = std::make_unique<plat::Host>(engine, test::small_host("h", 5000.0, 100.0));
  plat::DiskSpec spec;
  spec.name = "d";
  spec.read_bw = 10.0;
  spec.write_bw = 10.0;
  plat::Disk* disk = host->add_disk(engine, spec);
  storage::LocalStorage st(engine, *host, *disk, cache::CacheMode::Writeback, params);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::Read: co_await st.read_file(op.file, op.chunk); break;
        case Op::Write: co_await st.write_file(op.file, op.size, op.chunk); break;
        case Op::Compute: co_await e.sleep(op.size); break;
        case Op::Release: st.release_anonymous(op.size); break;
      }
    }
  };
  test::run_actor(engine, body(engine));

  EXPECT_NEAR(engine.now(), psim.now(), 1e-6 * psim.now() + 1e-6);
  cache::MemoryManager* mm = st.memory_manager();
  EXPECT_NEAR(mm->cached(), psim.cached(), 1.0);
  EXPECT_NEAR(mm->dirty(), psim.dirty(), 1.0);
  EXPECT_NEAR(mm->anonymous(), psim.anonymous(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace pcs
