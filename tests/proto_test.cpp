// The analytic prototype: closed-form t = D/bw timings and the same cache
// algorithms as the full model.
#include "proto/analytic.hpp"

#include <gtest/gtest.h>

namespace pcs::proto {
namespace {

ProtoConfig small_config() {
  ProtoConfig c;
  c.total_mem = 1000.0;
  c.mem_read_bw = 100.0;
  c.mem_write_bw = 100.0;
  c.disk_read_bw = 10.0;
  c.disk_write_bw = 10.0;
  return c;
}

TEST(AnalyticSim, RejectsBadConfig) {
  ProtoConfig c = small_config();
  c.disk_read_bw = 0.0;
  EXPECT_THROW(AnalyticSim{c}, std::invalid_argument);
}

TEST(AnalyticSim, ColdReadAtDiskBandwidth) {
  AnalyticSim sim(small_config());
  sim.stage_file("f", 100.0);
  sim.read_file("f", 50.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_DOUBLE_EQ(sim.cached("f"), 100.0);
  EXPECT_DOUBLE_EQ(sim.anonymous(), 100.0);
}

TEST(AnalyticSim, WarmReadAtMemoryBandwidth) {
  AnalyticSim sim(small_config());
  sim.stage_file("f", 100.0);
  sim.read_file("f", 50.0);
  sim.release_anonymous(100.0);
  double t0 = sim.now();
  sim.read_file("f", 50.0);
  EXPECT_DOUBLE_EQ(sim.now() - t0, 1.0);
}

TEST(AnalyticSim, WriteBelowDirtyLimitAtMemoryBandwidth) {
  AnalyticSim sim(small_config());
  sim.write_file("f", 150.0, 50.0);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
  EXPECT_DOUBLE_EQ(sim.dirty(), 150.0);
  EXPECT_DOUBLE_EQ(sim.file_size("f"), 150.0);
}

TEST(AnalyticSim, LargeWriteThrottledByDirtyLimit) {
  AnalyticSim sim(small_config());
  sim.write_file("f", 600.0, 50.0);
  // dirty limit 200: at least 400 B were flushed synchronously at 10 B/s,
  // so the write takes far longer than the pure memory time (6 s).
  EXPECT_GT(sim.now(), 40.0);
  EXPECT_LE(sim.dirty(), 200.0 + 50.0);
  EXPECT_DOUBLE_EQ(sim.cached("f"), 600.0);
}

TEST(AnalyticSim, ExpiredDirtyDataFlushesDuringCompute) {
  ProtoConfig c = small_config();
  c.cache.dirty_expire = 30.0;
  AnalyticSim sim(c);
  sim.write_file("f", 100.0, 50.0);
  EXPECT_DOUBLE_EQ(sim.dirty(), 100.0);
  sim.compute(100.0);  // well past the 30 s expiry
  EXPECT_DOUBLE_EQ(sim.dirty(), 0.0);
  // Compute time itself is unaffected (background flush overlaps).
  EXPECT_DOUBLE_EQ(sim.now(), 1.0 + 100.0);
}

TEST(AnalyticSim, BackgroundFlushIsRateLimited) {
  ProtoConfig c = small_config();
  c.cache.dirty_expire = 1.0;  // expire almost immediately
  AnalyticSim sim(c);
  sim.write_file("f", 100.0, 100.0);
  sim.compute(3.0);  // window after expiry is ~3 s -> at most ~30 B flushed
  EXPECT_GT(sim.dirty(), 50.0);
  sim.compute(20.0);
  EXPECT_DOUBLE_EQ(sim.dirty(), 0.0);
}

TEST(AnalyticSim, ReadEvictsOtherFilesFirst) {
  AnalyticSim sim(small_config());
  sim.stage_file("a", 450.0);
  sim.stage_file("b", 450.0);
  sim.read_file("a", 50.0);
  sim.release_anonymous(450.0);
  sim.read_file("b", 50.0);
  // Reading b (450 anon + 450 cache) forces eviction of a's cached data.
  EXPECT_DOUBLE_EQ(sim.cached("b"), 450.0);
  EXPECT_LT(sim.cached("a"), 450.0);
}

TEST(AnalyticSim, SnapshotAndProfile) {
  AnalyticSim sim(small_config());
  sim.stage_file("f", 100.0);
  sim.read_file("f", 25.0);
  cache::CacheSnapshot s = sim.snapshot();
  EXPECT_DOUBLE_EQ(s.total, 1000.0);
  EXPECT_DOUBLE_EQ(s.cached, 100.0);
  EXPECT_DOUBLE_EQ(s.per_file.at("f"), 100.0);
  EXPECT_EQ(sim.profile().size(), 4u);  // one record per chunk
  // Clock is non-decreasing across the profile.
  for (std::size_t i = 1; i < sim.profile().size(); ++i) {
    EXPECT_GE(sim.profile()[i].time, sim.profile()[i - 1].time);
  }
}

TEST(AnalyticSim, StageDuplicateThrows) {
  AnalyticSim sim(small_config());
  sim.stage_file("f", 10.0);
  EXPECT_THROW(sim.stage_file("f", 10.0), std::invalid_argument);
  EXPECT_THROW((void)sim.file_size("ghost"), std::invalid_argument);
}

TEST(AnalyticSim, SyntheticPipelineDirtyStaysBounded) {
  ProtoConfig c = small_config();
  AnalyticSim sim(c);
  sim.stage_file("f1", 300.0);
  for (int i = 1; i <= 3; ++i) {
    sim.read_file("f" + std::to_string(i), 50.0);
    sim.compute(5.0);
    sim.write_file("f" + std::to_string(i + 1), 300.0, 50.0);
    sim.release_anonymous(300.0);
  }
  for (const auto& snap : sim.profile()) {
    EXPECT_LE(snap.dirty, sim.dirty_limit() + 50.0 + 1.0);
    EXPECT_GE(snap.free, -1.0);
  }
}

}  // namespace
}  // namespace pcs::proto
