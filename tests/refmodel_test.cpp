// The reference kernel model (ground-truth substitute): page quantisation,
// background-ratio writeback, open-write protection.
#include "refmodel/page_model.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pcs::ref {
namespace {

RefParams small_params() {
  RefParams p;
  p.page_size = 10.0;  // 10 B pages for readable arithmetic
  p.dirty_ratio = 0.20;
  p.dirty_background_ratio = 0.10;
  p.dirty_expire = 30.0;
  p.writeback_period = 5.0;
  return p;
}

TEST(PageCacheKernel, QuantizeRoundsUpToPages) {
  PageCacheKernel k(small_params(), 1000.0);
  EXPECT_DOUBLE_EQ(k.quantize(0.0), 0.0);
  EXPECT_DOUBLE_EQ(k.quantize(1.0), 10.0);
  EXPECT_DOUBLE_EQ(k.quantize(10.0), 10.0);
  EXPECT_DOUBLE_EQ(k.quantize(11.0), 20.0);
}

TEST(PageCacheKernel, InsertAndAccounting) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_clean("a", 100.0, 0.0);
  k.insert_dirty("b", 50.0, 1.0);
  EXPECT_DOUBLE_EQ(k.cached(), 150.0);
  EXPECT_DOUBLE_EQ(k.cached("a"), 100.0);
  EXPECT_DOUBLE_EQ(k.dirty(), 50.0);
  EXPECT_DOUBLE_EQ(k.free_mem(), 850.0);
  k.check_invariants();
}

TEST(PageCacheKernel, ReclaimEvictsCleanOnly) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_clean("a", 100.0, 0.0);
  k.insert_dirty("b", 100.0, 1.0);
  double got = k.reclaim(150.0);
  EXPECT_DOUBLE_EQ(got, 100.0);  // only the clean extent
  EXPECT_DOUBLE_EQ(k.cached("b"), 100.0);
  k.check_invariants();
}

TEST(PageCacheKernel, ReclaimSkipsWriteProtectedFiles) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_clean("protected", 100.0, 0.0);
  k.insert_clean("victim", 100.0, 1.0);
  k.open_write("protected");
  double got = k.reclaim(150.0);
  EXPECT_DOUBLE_EQ(got, 100.0);
  EXPECT_DOUBLE_EQ(k.cached("protected"), 100.0);
  EXPECT_DOUBLE_EQ(k.cached("victim"), 0.0);
  k.close_write("protected");
  got = k.reclaim(50.0);
  EXPECT_DOUBLE_EQ(got, 50.0);  // protection lifted
}

TEST(PageCacheKernel, TouchPromotesToActive) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_clean("a", 90.0, 0.0);
  double touched = k.touch("a", 90.0, 1.0);
  EXPECT_DOUBLE_EQ(touched, 90.0);
  cache::CacheSnapshot s = k.snapshot(1.0);
  EXPECT_GT(s.active, 0.0);
  // Balance keeps active <= 2x inactive.
  EXPECT_LE(s.active, 2.0 * s.inactive + 1.0);
}

TEST(PageCacheKernel, TouchReportsOnlyCachedBytes) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_clean("a", 50.0, 0.0);
  EXPECT_DOUBLE_EQ(k.touch("a", 200.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(k.touch("ghost", 10.0, 1.0), 0.0);
}

TEST(PageCacheKernel, WritebackBatchExpiredOnly) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_dirty("old", 50.0, 0.0);
  k.insert_dirty("new", 50.0, 25.0);
  auto batch = k.take_writeback_batch(1000.0, 40.0, /*only_expired=*/true);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].first, "old");
  EXPECT_DOUBLE_EQ(k.dirty(), 50.0);  // "new" still dirty
}

TEST(PageCacheKernel, WritebackBatchRespectsMaxBytes) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_dirty("a", 100.0, 0.0);
  auto batch = k.take_writeback_batch(30.0, 1.0, /*only_expired=*/false);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch[0].second, 30.0);
  EXPECT_DOUBLE_EQ(k.dirty(), 70.0);
  k.check_invariants();
}

TEST(PageCacheKernel, AnonymousReclaimAndOvercommit) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_clean("a", 800.0, 0.0);
  k.alloc_anon(900.0);  // forces reclaim
  EXPECT_DOUBLE_EQ(k.anonymous(), 900.0);
  EXPECT_LE(k.cached(), 100.0 + 1.0);
  EXPECT_THROW(k.alloc_anon(500.0), std::runtime_error);
  k.release_anon(900.0);
  EXPECT_DOUBLE_EQ(k.anonymous(), 0.0);
}

TEST(PageCacheKernel, DropFile) {
  PageCacheKernel k(small_params(), 1000.0);
  k.insert_clean("a", 100.0, 0.0);
  k.insert_dirty("a", 50.0, 1.0);
  k.insert_clean("b", 30.0, 2.0);
  k.drop_file("a");
  EXPECT_DOUBLE_EQ(k.cached("a"), 0.0);
  EXPECT_DOUBLE_EQ(k.cached(), 30.0);
  EXPECT_DOUBLE_EQ(k.dirty(), 0.0);
}

// RefStorage over a small platform: memory 100 B/s, disk 10 B/s, 1000 B.
class RefStorageTest : public ::testing::Test {
 protected:
  RefStorageTest() {
    host_ = std::make_unique<plat::Host>(engine_, test::small_host("h", 1000.0, 100.0));
    plat::DiskSpec spec;
    spec.name = "d0";
    spec.read_bw = 10.0;
    spec.write_bw = 10.0;
    disk_ = host_->add_disk(engine_, spec);
  }

  sim::Engine engine_;
  std::unique_ptr<plat::Host> host_;
  plat::Disk* disk_ = nullptr;
};

TEST_F(RefStorageTest, ColdAndWarmReadTimings) {
  RefStorage st(engine_, *host_, *disk_, small_params());
  st.stage_file("f", 100.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    double t0 = e.now();
    co_await st.read_file("f", 50.0);
    EXPECT_DOUBLE_EQ(e.now() - t0, 10.0);  // disk-bound
    st.release_anonymous(100.0);
    t0 = e.now();
    co_await st.read_file("f", 50.0);
    EXPECT_DOUBLE_EQ(e.now() - t0, 1.0);  // memory-bound
  };
  test::run_actor(engine_, body(engine_));
}

TEST_F(RefStorageTest, WriteIsMemorySpeedBelowDirtyLimit) {
  RefStorage st(engine_, *host_, *disk_, small_params());
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    double t0 = e.now();
    co_await st.write_file("f", 150.0, 50.0);
    EXPECT_DOUBLE_EQ(e.now() - t0, 1.5);
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_DOUBLE_EQ(st.kernel().dirty(), 150.0);
}

TEST_F(RefStorageTest, BackgroundFlusherDrainsAboveBackgroundRatio) {
  RefStorage st(engine_, *host_, *disk_, small_params());
  st.start_flusher();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("f", 150.0, 50.0);
    // dirty 150 > bg limit 100: the flusher (woken within 5 s) writes the
    // excess back without waiting for the 30 s expiry.
    co_await e.sleep(12.0);
    EXPECT_LE(st.kernel().dirty(), 100.0 + 1.0);
    EXPECT_GT(st.kernel().dirty(), 0.0);  // but not expired yet
    co_await e.sleep(40.0);               // now past expiry
    EXPECT_DOUBLE_EQ(st.kernel().dirty(), 0.0);
  };
  test::run_actor(engine_, body(engine_));
}

TEST_F(RefStorageTest, WriteProtectedFileSurvivesMemoryPressure) {
  RefParams params = small_params();
  RefStorage st(engine_, *host_, *disk_, params);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    // Fill the cache with a clean file, then write another one large
    // enough to need reclaim; the written file's own pages must never be
    // evicted while it is open.
    st.stage_file("filler", 700.0);
    co_await st.read_file("filler", 100.0);
    st.release_anonymous(700.0);
    co_await st.write_file("hot", 600.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // All of "hot" is still cached: eviction went to "filler".
  EXPECT_DOUBLE_EQ(st.kernel().cached("hot"), 600.0);
  EXPECT_LT(st.kernel().cached("filler"), 700.0);
}

TEST_F(RefStorageTest, ThrottledWriterStaysNearDirtyLimit) {
  RefStorage st(engine_, *host_, *disk_, small_params());
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("f", 600.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  // dirty limit is 200; the writer must have flushed the rest itself.
  EXPECT_LE(st.kernel().dirty(), 200.0 + 50.0);
  EXPECT_DOUBLE_EQ(st.kernel().cached("f"), 600.0);
}

}  // namespace
}  // namespace pcs::ref
