// The scenario subsystem's contract with the paper harness: compiling a
// RunConfig into a declarative ScenarioSpec and executing it through the
// generic runner must reproduce the hand-built legacy path BIT-IDENTICALLY
// — same makespan, same per-task timings, same memory profile, same final
// cache state — for all four SimulatorKinds, local and NFS.  Anything
// weaker would silently change every figure of the paper.
#include <gtest/gtest.h>

#include "exp/runners.hpp"
#include "scenario/runner.hpp"

namespace pcs::exp {
namespace {

using util::GB;

void expect_bit_identical(const RunResult& legacy, const RunResult& scenario_run) {
  EXPECT_EQ(legacy.makespan, scenario_run.makespan);  // bitwise, not NEAR

  ASSERT_EQ(legacy.tasks.size(), scenario_run.tasks.size());
  for (std::size_t i = 0; i < legacy.tasks.size(); ++i) {
    const wf::TaskResult& a = legacy.tasks[i];
    const wf::TaskResult& b = scenario_run.tasks[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.start, b.start) << a.name;
    EXPECT_EQ(a.read_start, b.read_start) << a.name;
    EXPECT_EQ(a.read_end, b.read_end) << a.name;
    EXPECT_EQ(a.compute_end, b.compute_end) << a.name;
    EXPECT_EQ(a.write_end, b.write_end) << a.name;
    EXPECT_EQ(a.end, b.end) << a.name;
  }

  ASSERT_EQ(legacy.profile.size(), scenario_run.profile.size());
  for (std::size_t i = 0; i < legacy.profile.size(); ++i) {
    const cache::CacheSnapshot& a = legacy.profile[i];
    const cache::CacheSnapshot& b = scenario_run.profile[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.cached, b.cached);
    EXPECT_EQ(a.dirty, b.dirty);
    EXPECT_EQ(a.anonymous, b.anonymous);
    EXPECT_EQ(a.free, b.free);
    EXPECT_EQ(a.per_file, b.per_file);
  }

  EXPECT_EQ(legacy.final_state.cached, scenario_run.final_state.cached);
  EXPECT_EQ(legacy.final_state.dirty, scenario_run.final_state.dirty);
  EXPECT_EQ(legacy.final_state.anonymous, scenario_run.final_state.anonymous);
  EXPECT_EQ(legacy.final_inactive_blocks, scenario_run.final_inactive_blocks);
  EXPECT_EQ(legacy.final_active_blocks, scenario_run.final_active_blocks);
}

void expect_paths_equivalent(const RunConfig& config) {
  const RunResult legacy = run_experiment_legacy(config);
  const RunResult via_scenario = scenario::run_scenario(scenario_from_run_config(config));
  expect_bit_identical(legacy, via_scenario);
  // run_experiment IS the scenario path; pin that too.
  expect_bit_identical(legacy, run_experiment(config));
}

RunConfig small(SimulatorKind kind) {
  RunConfig config;
  config.kind = kind;
  config.input_size = 3.0 * GB;
  return config;
}

TEST(ScenarioEquivalence, WrenchCacheLocal) {
  RunConfig config = small(SimulatorKind::WrenchCache);
  config.instances = 2;
  config.probe_period = 10.0;
  expect_paths_equivalent(config);
}

TEST(ScenarioEquivalence, WrenchLocal) {
  expect_paths_equivalent(small(SimulatorKind::Wrench));
}

TEST(ScenarioEquivalence, Reference) {
  RunConfig config = small(SimulatorKind::Reference);
  config.probe_period = 7.0;
  expect_paths_equivalent(config);
}

TEST(ScenarioEquivalence, Prototype) {
  expect_paths_equivalent(small(SimulatorKind::Prototype));
}

TEST(ScenarioEquivalence, WrenchCacheNfs) {
  RunConfig config = small(SimulatorKind::WrenchCache);
  config.nfs = true;
  config.instances = 2;
  config.probe_period = 10.0;
  expect_paths_equivalent(config);
}

TEST(ScenarioEquivalence, WrenchNfs) {
  RunConfig config = small(SimulatorKind::Wrench);
  config.nfs = true;
  expect_paths_equivalent(config);
}

TEST(ScenarioEquivalence, NighresWorkload) {
  RunConfig config = small(SimulatorKind::WrenchCache);
  config.app = AppKind::Nighres;
  config.chunk_size = 50.0 * util::MB;
  expect_paths_equivalent(config);
}

TEST(ScenarioEquivalence, AblationBandwidthOverride) {
  RunConfig config = small(SimulatorKind::WrenchCache);
  config.bandwidth_override = BandwidthMode::RealAsymmetric;
  expect_paths_equivalent(config);
}

TEST(ScenarioEquivalence, ColdNfsInputs) {
  RunConfig config = small(SimulatorKind::WrenchCache);
  config.nfs = true;
  config.nfs_warm_inputs = false;
  expect_paths_equivalent(config);
}

// The generated spec must survive serialization: dump the effective JSON,
// re-parse it, and still reproduce the legacy run bit-for-bit.  This is
// what guarantees `pcs_cli run` over a dumped preset equals the committed
// binary.
TEST(ScenarioEquivalence, SurvivesJsonRoundTrip) {
  RunConfig config = small(SimulatorKind::WrenchCache);
  config.instances = 2;
  const RunResult legacy = run_experiment_legacy(config);
  const scenario::ScenarioSpec spec = scenario_from_run_config(config);
  const util::Json dumped = util::Json::parse(spec.to_json().dump(2));
  const RunResult reparsed = scenario::run_scenario(scenario::ScenarioSpec::parse(dumped));
  expect_bit_identical(legacy, reparsed);
}

}  // namespace
}  // namespace pcs::exp
