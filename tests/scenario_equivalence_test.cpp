// The scenario subsystem's contract with the paper harness: compiling a
// RunConfig into a declarative ScenarioSpec and executing it through the
// generic runner must reproduce the original hand-built harness
// BIT-IDENTICALLY — same makespan, same per-task timings, same memory
// profile, same final cache state.  Anything weaker would silently change
// every figure of the paper.
//
// The oracle is a committed golden record (tests/golden/
// scenario_equivalence.json) generated from `run_experiment_legacy` — the
// pre-scenario construction path — immediately before that code was
// deleted (it had soaked a release with the live-path comparison green).
// Matching the record bit-for-bit therefore still pins today's scenario
// path to the original construction.  After an intentional model change,
// regenerate with:
//   PCS_UPDATE_GOLDEN=1 ./build/scenario_equivalence_test
// and commit the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "exp/runners.hpp"
#include "golden_format.hpp"
#include "scenario/runner.hpp"

#ifndef PCS_SOURCE_DIR
#define PCS_SOURCE_DIR "."
#endif

namespace pcs::exp {
namespace {

constexpr const char* kGoldenPath =
    PCS_SOURCE_DIR "/tests/golden/scenario_equivalence.json";

RunConfig base(SimulatorKind kind) {
  RunConfig config;
  config.kind = kind;
  config.input_size = 3.0 * util::GB;
  return config;
}

/// The recorded configurations, keyed as in the golden file.  Every entry
/// in the file must have a config here and vice versa (CoversEveryRecord).
const std::map<std::string, RunConfig>& golden_configs() {
  static const std::map<std::string, RunConfig> configs = [] {
    std::map<std::string, RunConfig> c;
    {
      RunConfig config = base(SimulatorKind::WrenchCache);
      config.instances = 2;
      config.probe_period = 10.0;
      c["wrench_cache_local"] = config;
    }
    c["wrench_local"] = base(SimulatorKind::Wrench);
    {
      RunConfig config = base(SimulatorKind::Reference);
      config.probe_period = 7.0;
      c["reference"] = config;
    }
    c["prototype"] = base(SimulatorKind::Prototype);
    {
      RunConfig config = base(SimulatorKind::WrenchCache);
      config.nfs = true;
      config.instances = 2;
      config.probe_period = 10.0;
      c["wrench_cache_nfs"] = config;
    }
    {
      RunConfig config = base(SimulatorKind::Wrench);
      config.nfs = true;
      c["wrench_nfs"] = config;
    }
    {
      RunConfig config = base(SimulatorKind::WrenchCache);
      config.app = AppKind::Nighres;
      config.chunk_size = 50.0 * util::MB;
      c["nighres"] = config;
    }
    {
      RunConfig config = base(SimulatorKind::WrenchCache);
      config.bandwidth_override = BandwidthMode::RealAsymmetric;
      c["ablation_bandwidth"] = config;
    }
    {
      RunConfig config = base(SimulatorKind::WrenchCache);
      config.nfs = true;
      config.nfs_warm_inputs = false;
      c["cold_nfs_inputs"] = config;
    }
    return c;
  }();
  return configs;
}

const util::Json& golden_doc() {
  static const util::Json doc = util::Json::parse_file(kGoldenPath);
  return doc;
}

/// Field-by-field bitwise comparison with task-level attribution (a plain
/// document EXPECT_EQ would drown the interesting divergence).
void expect_matches_golden(const util::Json& golden, const util::Json& fresh) {
  EXPECT_EQ(golden.at("makespan").as_number(), fresh.at("makespan").as_number());

  const util::JsonArray& gt = golden.at("tasks").as_array();
  const util::JsonArray& ft = fresh.at("tasks").as_array();
  ASSERT_EQ(gt.size(), ft.size());
  for (std::size_t i = 0; i < gt.size(); ++i) {
    const std::string& name = gt[i].at("name").as_string();
    EXPECT_EQ(name, ft[i].at("name").as_string());
    for (const char* field :
         {"start", "read_start", "read_end", "compute_end", "write_end", "end"}) {
      EXPECT_EQ(gt[i].at(field).as_number(), ft[i].at(field).as_number())
          << name << "." << field;
    }
  }

  const util::JsonArray& gp = golden.at("profile").as_array();
  const util::JsonArray& fp = fresh.at("profile").as_array();
  ASSERT_EQ(gp.size(), fp.size());
  for (std::size_t i = 0; i < gp.size(); ++i) {
    for (const char* field : {"time", "cached", "dirty", "anonymous", "free"}) {
      EXPECT_EQ(gp[i].at(field).as_number(), fp[i].at(field).as_number())
          << "profile[" << i << "]." << field;
    }
    // Full per-file map: cached bytes moving between files is drift even
    // when every snapshot total stays the same.
    EXPECT_EQ(gp[i].at("per_file"), fp[i].at("per_file")) << "profile[" << i << "].per_file";
  }

  EXPECT_EQ(golden.at("final_state"), fresh.at("final_state"));
}

void expect_config_matches(const std::string& key) {
  const RunConfig& config = golden_configs().at(key);
  const util::Json fresh = test::golden_of(run_experiment(config));
  ASSERT_TRUE(golden_doc().at("runs").contains(key)) << key;
  expect_matches_golden(golden_doc().at("runs").at(key), fresh);
}

TEST(ScenarioEquivalence, WrenchCacheLocal) { expect_config_matches("wrench_cache_local"); }
TEST(ScenarioEquivalence, WrenchLocal) { expect_config_matches("wrench_local"); }
TEST(ScenarioEquivalence, Reference) { expect_config_matches("reference"); }
TEST(ScenarioEquivalence, Prototype) { expect_config_matches("prototype"); }
TEST(ScenarioEquivalence, WrenchCacheNfs) { expect_config_matches("wrench_cache_nfs"); }
TEST(ScenarioEquivalence, WrenchNfs) { expect_config_matches("wrench_nfs"); }
TEST(ScenarioEquivalence, NighresWorkload) { expect_config_matches("nighres"); }
TEST(ScenarioEquivalence, AblationBandwidthOverride) {
  expect_config_matches("ablation_bandwidth");
}
TEST(ScenarioEquivalence, ColdNfsInputs) { expect_config_matches("cold_nfs_inputs"); }

// Every recorded run has a config (stale records are drift too).
TEST(ScenarioEquivalence, CoversEveryRecord) {
  for (const auto& [key, value] : golden_doc().at("runs").as_object()) {
    EXPECT_EQ(golden_configs().count(key), 1u) << "recorded but unknown: " << key;
  }
  EXPECT_EQ(golden_doc().at("runs").size(), golden_configs().size());
}

// The generated spec must survive serialization: dump the effective JSON,
// re-parse it, and still match the golden record.  This is what guarantees
// `pcs_cli run` over a dumped preset equals the committed binary.
TEST(ScenarioEquivalence, SurvivesJsonRoundTrip) {
  const RunConfig& config = golden_configs().at("wrench_cache_local");
  const scenario::ScenarioSpec spec = scenario_from_run_config(config);
  const util::Json dumped = util::Json::parse(spec.to_json().dump(2));
  const RunResult reparsed = scenario::run_scenario(scenario::ScenarioSpec::parse(dumped));
  expect_matches_golden(golden_doc().at("runs").at("wrench_cache_local"),
                        test::golden_of(reparsed));
}

// PCS_UPDATE_GOLDEN=1 rewrites the record from the current scenario path
// (the only path left); use after intentional model changes and commit the
// diff — CI always runs without the variable.
TEST(ScenarioEquivalence, UpdateGoldenWhenRequested) {
  const char* update = std::getenv("PCS_UPDATE_GOLDEN");
  if (update == nullptr || *update == '\0' || std::string(update) == "0") GTEST_SKIP();
  util::Json runs{util::JsonObject{}};
  for (const auto& [key, config] : golden_configs()) {
    runs.set(key, test::golden_of(run_experiment(config)));
  }
  util::Json doc{util::JsonObject{}};
  // Regenerated records pin the scenario path to itself-as-of-now, unlike
  // the original record (generated from the deleted legacy harness) — say
  // so, or the file would claim a provenance it no longer has.
  doc.set("comment",
          "Golden outputs of the scenario path (run_experiment), regenerated with "
          "PCS_UPDATE_GOLDEN=1 after an intentional model change; the original record "
          "was generated from the legacy hand-built harness at its deletion.");
  doc.set("runs", std::move(runs));
  std::ofstream out(kGoldenPath);
  ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
  out << doc.dump(2) << "\n";
}

}  // namespace
}  // namespace pcs::exp
