// The declarative scenario subsystem: spec parsing/validation/defaults,
// the storage backend registry, the scenario runner on hand-written specs
// (including the promoted burst-buffer and cgroup backends and the
// multi-tenant workload), and the effective-spec dump.
#include <gtest/gtest.h>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "storage/service_registry.hpp"
#include "util/units.hpp"

namespace pcs::scenario {
namespace {

using util::GB;
using util::MB;

// A small single-node platform document shared by the local tests.
util::Json node_platform() {
  return util::Json::parse(R"json({
    "hosts": [
      {"name": "node0", "speed_gflops": 1, "cores": 8, "ram": "32 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [{"name": "ssd0", "read_bw_MBps": 510, "write_bw_MBps": 420}]}
    ]
  })json");
}

// The paper's compute + storage pair with one link, for NFS-shaped tests.
util::Json cluster_platform() {
  return util::Json::parse(R"json({
    "hosts": [
      {"name": "compute0", "speed_gflops": 1, "cores": 32, "ram": "250 GB",
       "memory": {"read_bw_MBps": 4812, "write_bw_MBps": 4812},
       "disks": [{"name": "ssd0", "read_bw_MBps": 465, "write_bw_MBps": 465}]},
      {"name": "storage0", "speed_gflops": 1, "cores": 32, "ram": "250 GB",
       "memory": {"read_bw_MBps": 4812, "write_bw_MBps": 4812},
       "disks": [{"name": "nfs-ssd", "read_bw_MBps": 445, "write_bw_MBps": 445}]}
    ],
    "links": [{"name": "lan", "bw_MBps": 3000}],
    "routes": [{"src": "compute0", "dst": "storage0", "links": ["lan"]}]
  })json");
}

util::Json scenario_doc(util::Json platform) {
  util::Json doc{util::JsonObject{}};
  doc.set("platform", std::move(platform));
  return doc;
}

TEST(ScenarioSpec, DefaultsDeriveFromSimulatorKind) {
  util::Json doc = scenario_doc(node_platform());
  ScenarioSpec spec = ScenarioSpec::parse(doc);
  EXPECT_EQ(spec.simulator, "wrench_cache");
  EXPECT_EQ(spec.compute_host, "node0");
  ASSERT_EQ(spec.services.size(), 1u);
  EXPECT_EQ(spec.services[0].type, "local");
  EXPECT_EQ(spec.services[0].spec.at("cache").as_string(), "writeback");
  EXPECT_EQ(spec.default_service, "store");
  EXPECT_EQ(spec.probe_service, "store");
  EXPECT_FALSE(spec.warm_inputs);

  doc.set("simulator", "wrench");
  EXPECT_EQ(ScenarioSpec::parse(doc).services[0].spec.at("cache").as_string(), "none");
  doc.set("simulator", "reference");
  EXPECT_EQ(ScenarioSpec::parse(doc).services[0].type, "reference");
  doc.set("simulator", "prototype");
  EXPECT_TRUE(ScenarioSpec::parse(doc).services.empty());
}

TEST(ScenarioSpec, RejectsMalformedDocuments) {
  EXPECT_THROW(ScenarioSpec::parse(util::Json{util::JsonObject{}}), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(util::Json("nope")), ScenarioError);

  util::Json doc = scenario_doc(node_platform());
  doc.set("simulator", "magic");
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);

  doc = scenario_doc(node_platform());
  doc.set("chunk_size", -5.0);
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);

  doc = scenario_doc(node_platform());
  doc.set("default_service", "missing");
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);

  doc = scenario_doc(node_platform());
  util::Json services{util::JsonArray{}};
  services.push_back(util::Json{util::JsonObject{}}.set("name", "dup").set("type", "local"));
  services.push_back(util::Json{util::JsonObject{}}.set("name", "dup").set("type", "local"));
  doc.set("services", std::move(services));
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);
}

TEST(ScenarioSpec, EffectiveDumpParsesBack) {
  util::Json doc = scenario_doc(cluster_platform());
  doc.set("name", "roundtrip");
  doc.set("chunk_size", "50 MB");
  doc.set("probe_period", 5.0);
  ScenarioSpec spec = ScenarioSpec::parse(doc);
  ScenarioSpec again = ScenarioSpec::parse(util::Json::parse(spec.to_json().dump(2)));
  EXPECT_EQ(again.name, "roundtrip");
  EXPECT_EQ(again.chunk_size, 50.0 * MB);
  EXPECT_EQ(again.probe_period, 5.0);
  EXPECT_EQ(again.services.size(), spec.services.size());
  EXPECT_EQ(again.default_service, spec.default_service);
}

TEST(ServiceRegistry, KnowsBuiltInBackends) {
  auto& registry = storage::ServiceRegistry::instance();
  for (const char* type : {"local", "nfs", "reference", "burst_buffer", "cgroup_local"}) {
    EXPECT_TRUE(registry.has(type)) << type;
  }
  EXPECT_FALSE(registry.has("tape_robot"));
  EXPECT_GE(registry.types().size(), 5u);
}

TEST(ScenarioRunner, RunsMinimalLocalScenario) {
  util::Json doc = scenario_doc(node_platform());
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "synthetic")
                          .set("input_size", "2 GB"));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  EXPECT_EQ(result.tasks.size(), 3u);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GT(result.final_state.cached, 0.0);
}

TEST(ScenarioRunner, UnknownBackendAndServiceFail) {
  util::Json doc = scenario_doc(node_platform());
  util::Json services{util::JsonArray{}};
  services.push_back(util::Json{util::JsonObject{}}.set("name", "s").set("type", "tape_robot"));
  doc.set("services", std::move(services));
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(doc)), storage::StorageError);

  doc = scenario_doc(node_platform());
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "synthetic")
                          .set("input_size", "1 GB")
                          .set("service", "missing"));
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(doc)), ScenarioError);
}

TEST(ScenarioRunner, CgroupBackendRequiresAndHonorsMemoryLimit) {
  util::Json doc = scenario_doc(node_platform());
  util::Json services{util::JsonArray{}};
  services.push_back(
      util::Json{util::JsonObject{}}.set("name", "store").set("type", "cgroup_local"));
  doc.set("services", services);
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(doc)), storage::StorageError);

  auto makespan_with_limit = [&](const std::string& limit) {
    util::Json limited = scenario_doc(node_platform());
    util::Json svcs{util::JsonArray{}};
    svcs.push_back(util::Json{util::JsonObject{}}
                       .set("name", "store")
                       .set("type", "cgroup_local")
                       .set("memory_limit", limit));
    limited.set("services", std::move(svcs));
    limited.set("workload", util::Json{util::JsonObject{}}
                                .set("type", "synthetic")
                                .set("input_size", "4 GB"));
    return run_scenario(ScenarioSpec::parse(limited)).makespan;
  };
  // Page-cache starvation: a tight cgroup limit costs I/O time.
  EXPECT_GT(makespan_with_limit("6 GB"), makespan_with_limit("30 GB"));
}

TEST(ScenarioRunner, BurstBufferDrainsResultsToTheServer) {
  util::Json doc = scenario_doc(cluster_platform());
  doc.set("name", "bb");
  util::Json target = util::Json{util::JsonObject{}}
                          .set("server_host", "storage0")
                          .set("server_disk", "nfs-ssd");
  util::Json svcs{util::JsonArray{}};
  svcs.push_back(util::Json{util::JsonObject{}}
                     .set("name", "bb")
                     .set("type", "burst_buffer")
                     .set("host", "compute0")
                     .set("disk", "ssd0")
                     .set("target", std::move(target))
                     .set("drain_files", util::Json{util::JsonArray{}}
                                             .push_back("a0:file4")
                                             .push_back("a1:file4")));
  doc.set("services", std::move(svcs));
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "synthetic")
                          .set("input_size", "2 GB")
                          .set("instances", 2));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  EXPECT_EQ(result.tasks.size(), 6u);
  // The drainer held the simulation open until both final outputs were
  // durable, so the makespan covers the staging writes.
  EXPECT_GT(result.makespan, result.tasks.back().end);
}

TEST(ScenarioRunner, BurstBufferToleratesDuplicateDrainEntries) {
  // Regression: a duplicated drain_files entry used to make the drainer's
  // termination count unreachable, hanging the simulation.
  util::Json doc = scenario_doc(cluster_platform());
  util::Json target = util::Json{util::JsonObject{}}
                          .set("server_host", "storage0")
                          .set("server_disk", "nfs-ssd");
  util::Json svcs{util::JsonArray{}};
  svcs.push_back(util::Json{util::JsonObject{}}
                     .set("name", "bb")
                     .set("type", "burst_buffer")
                     .set("host", "compute0")
                     .set("target", std::move(target))
                     .set("drain_files", util::Json{util::JsonArray{}}
                                             .push_back("a0:file4")
                                             .push_back("a0:file4")));
  doc.set("services", std::move(svcs));
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "synthetic")
                          .set("input_size", "1 GB"));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  EXPECT_GT(result.makespan, 0.0);
}

TEST(ScenarioRunner, MultiTenantStaggersArrivals) {
  auto build = [&](double stagger) {
    util::Json doc = scenario_doc(node_platform());
    util::Json tenant_a = util::Json{util::JsonObject{}}
                              .set("name", "alpha")
                              .set("type", "synthetic")
                              .set("input_size", "2 GB")
                              .set("instances", 2)
                              .set("stagger", stagger);
    util::Json tenant_b = util::Json{util::JsonObject{}}
                              .set("name", "beta")
                              .set("type", "nighres")
                              .set("arrival", stagger / 2.0);
    doc.set("workload",
            util::Json{util::JsonObject{}}
                .set("type", "multi_tenant")
                .set("tenants",
                     util::Json{util::JsonArray{}}.push_back(tenant_a).push_back(tenant_b)));
    return run_scenario(ScenarioSpec::parse(doc));
  };
  RunResult together = build(0.0);
  EXPECT_EQ(together.tasks.size(), 2u * 3u + 4u);
  EXPECT_TRUE(together.task("alpha:a1:task1").name == "alpha:a1:task1");
  EXPECT_NO_THROW((void)together.task("beta:a0:skull_stripping"));

  RunResult staggered = build(500.0);
  EXPECT_EQ(staggered.tasks.size(), together.tasks.size());
  // alpha's second instance could not start before its arrival.
  EXPECT_GE(staggered.task("alpha:a1:task1").start, 500.0);
  EXPECT_GE(staggered.task("beta:a0:skull_stripping").start, 250.0);
  EXPECT_GT(staggered.makespan, together.makespan);
}

TEST(ScenarioRunner, PerTenantServicesGetTheirOwnCacheParams) {
  util::Json doc = scenario_doc(node_platform());
  util::Json svcs{util::JsonArray{}};
  svcs.push_back(util::Json{util::JsonObject{}}.set("name", "cached").set("type", "local"));
  svcs.push_back(util::Json{util::JsonObject{}}
                     .set("name", "throttled")
                     .set("type", "local")
                     .set("params", util::Json{util::JsonObject{}}.set("dirty_ratio", 0.01)));
  doc.set("services", std::move(svcs));
  util::Json tenant_fast = util::Json{util::JsonObject{}}
                               .set("name", "fast")
                               .set("type", "synthetic")
                               .set("input_size", "2 GB")
                               .set("service", "cached");
  util::Json tenant_slow = util::Json{util::JsonObject{}}
                               .set("name", "slow")
                               .set("type", "synthetic")
                               .set("input_size", "2 GB")
                               .set("service", "throttled");
  doc.set("workload",
          util::Json{util::JsonObject{}}
              .set("type", "multi_tenant")
              .set("tenants",
                   util::Json{util::JsonArray{}}.push_back(tenant_fast).push_back(tenant_slow)));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  // Same pipeline, but the 1% dirty budget forces synchronous flushing on
  // the throttled tenant's writes.
  EXPECT_GT(result.task("slow:a0:task1").write_time(),
            result.task("fast:a0:task1").write_time());
}

TEST(ScenarioRunner, DagWorkloadRunsFromInlineDocument) {
  util::Json doc = scenario_doc(node_platform());
  util::Json wf_doc = util::Json::parse(R"json({
    "tasks": [
      {"name": "ingest", "cpu_seconds": 2,
       "inputs":  [{"name": "raw", "size": "1 GB"}],
       "outputs": [{"name": "clean", "size": "500 MB"}]},
      {"name": "report", "cpu_seconds": 1,
       "inputs":  [{"name": "clean", "size": "500 MB"}],
       "outputs": [{"name": "summary", "size": "10 MB"}]}
    ]
  })json");
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "dag")
                          .set("workflow", wf_doc)
                          .set("instances", 2));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  EXPECT_EQ(result.tasks.size(), 4u);
  EXPECT_NO_THROW((void)result.task("a0:ingest"));
  EXPECT_NO_THROW((void)result.task("a1:report"));
}

}  // namespace
}  // namespace pcs::scenario
