// The declarative scenario subsystem: spec parsing/validation/defaults,
// the storage backend registry, the scenario runner on hand-written specs
// (including the promoted burst-buffer and cgroup backends and the
// multi-tenant workload), and the effective-spec dump.
#include <gtest/gtest.h>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "storage/service_registry.hpp"
#include "util/units.hpp"

namespace pcs::scenario {
namespace {

using util::GB;
using util::MB;

// A small single-node platform document shared by the local tests.
util::Json node_platform() {
  return util::Json::parse(R"json({
    "hosts": [
      {"name": "node0", "speed_gflops": 1, "cores": 8, "ram": "32 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [{"name": "ssd0", "read_bw_MBps": 510, "write_bw_MBps": 420}]}
    ]
  })json");
}

// The paper's compute + storage pair with one link, for NFS-shaped tests.
util::Json cluster_platform() {
  return util::Json::parse(R"json({
    "hosts": [
      {"name": "compute0", "speed_gflops": 1, "cores": 32, "ram": "250 GB",
       "memory": {"read_bw_MBps": 4812, "write_bw_MBps": 4812},
       "disks": [{"name": "ssd0", "read_bw_MBps": 465, "write_bw_MBps": 465}]},
      {"name": "storage0", "speed_gflops": 1, "cores": 32, "ram": "250 GB",
       "memory": {"read_bw_MBps": 4812, "write_bw_MBps": 4812},
       "disks": [{"name": "nfs-ssd", "read_bw_MBps": 445, "write_bw_MBps": 445}]}
    ],
    "links": [{"name": "lan", "bw_MBps": 3000}],
    "routes": [{"src": "compute0", "dst": "storage0", "links": ["lan"]}]
  })json");
}

util::Json scenario_doc(util::Json platform) {
  util::Json doc{util::JsonObject{}};
  doc.set("platform", std::move(platform));
  return doc;
}

TEST(ScenarioSpec, DefaultsDeriveFromSimulatorKind) {
  util::Json doc = scenario_doc(node_platform());
  ScenarioSpec spec = ScenarioSpec::parse(doc);
  EXPECT_EQ(spec.simulator, "wrench_cache");
  EXPECT_EQ(spec.compute_host, "node0");
  ASSERT_EQ(spec.services.size(), 1u);
  EXPECT_EQ(spec.services[0].type, "local");
  EXPECT_EQ(spec.services[0].spec.at("cache").as_string(), "writeback");
  EXPECT_EQ(spec.default_service, "store");
  EXPECT_EQ(spec.probe_service, "store");
  EXPECT_FALSE(spec.warm_inputs);

  doc.set("simulator", "wrench");
  EXPECT_EQ(ScenarioSpec::parse(doc).services[0].spec.at("cache").as_string(), "none");
  doc.set("simulator", "reference");
  EXPECT_EQ(ScenarioSpec::parse(doc).services[0].type, "reference");
  doc.set("simulator", "prototype");
  EXPECT_TRUE(ScenarioSpec::parse(doc).services.empty());
}

TEST(ScenarioSpec, RejectsMalformedDocuments) {
  EXPECT_THROW(ScenarioSpec::parse(util::Json{util::JsonObject{}}), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(util::Json("nope")), ScenarioError);

  util::Json doc = scenario_doc(node_platform());
  doc.set("simulator", "magic");
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);

  doc = scenario_doc(node_platform());
  doc.set("chunk_size", -5.0);
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);

  doc = scenario_doc(node_platform());
  doc.set("default_service", "missing");
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);

  doc = scenario_doc(node_platform());
  util::Json services{util::JsonArray{}};
  services.push_back(util::Json{util::JsonObject{}}.set("name", "dup").set("type", "local"));
  services.push_back(util::Json{util::JsonObject{}}.set("name", "dup").set("type", "local"));
  doc.set("services", std::move(services));
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);
}

TEST(ScenarioSpec, EffectiveDumpParsesBack) {
  util::Json doc = scenario_doc(cluster_platform());
  doc.set("name", "roundtrip");
  doc.set("chunk_size", "50 MB");
  doc.set("probe_period", 5.0);
  ScenarioSpec spec = ScenarioSpec::parse(doc);
  ScenarioSpec again = ScenarioSpec::parse(util::Json::parse(spec.to_json().dump(2)));
  EXPECT_EQ(again.name, "roundtrip");
  EXPECT_EQ(again.chunk_size, 50.0 * MB);
  EXPECT_EQ(again.probe_period, 5.0);
  EXPECT_EQ(again.services.size(), spec.services.size());
  EXPECT_EQ(again.default_service, spec.default_service);
}

TEST(ScenarioSpec, SolverThreadsParsesValidatesAndRoundTrips) {
  util::Json doc = scenario_doc(node_platform());
  EXPECT_EQ(ScenarioSpec::parse(doc).solver_threads, 1);
  // Default omitted from the effective dump: committed recorded logs embed
  // this document and must stay byte-stable across the parallel-solver PR.
  EXPECT_FALSE(ScenarioSpec::parse(doc).to_json().contains("solver_threads"));

  doc.set("solver_threads", 4);
  ScenarioSpec spec = ScenarioSpec::parse(doc);
  EXPECT_EQ(spec.solver_threads, 4);
  ScenarioSpec again = ScenarioSpec::parse(util::Json::parse(spec.to_json().dump(2)));
  EXPECT_EQ(again.solver_threads, 4);

  doc.set("solver_threads", 0);  // 0 = auto (hardware_concurrency)
  EXPECT_EQ(ScenarioSpec::parse(doc).solver_threads, 0);
  EXPECT_TRUE(ScenarioSpec::parse(doc).to_json().contains("solver_threads"));

  doc.set("solver_threads", -2);
  EXPECT_THROW(ScenarioSpec::parse(doc), ScenarioError);
}

TEST(ServiceRegistry, KnowsBuiltInBackends) {
  auto& registry = storage::ServiceRegistry::instance();
  for (const char* type : {"local", "nfs", "reference", "burst_buffer", "cgroup_local"}) {
    EXPECT_TRUE(registry.has(type)) << type;
  }
  EXPECT_FALSE(registry.has("tape_robot"));
  EXPECT_GE(registry.types().size(), 5u);
}

TEST(ScenarioRunner, RunsMinimalLocalScenario) {
  util::Json doc = scenario_doc(node_platform());
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "synthetic")
                          .set("input_size", "2 GB"));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  EXPECT_EQ(result.tasks.size(), 3u);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GT(result.final_state.cached, 0.0);
}

TEST(ScenarioRunner, UnknownBackendAndServiceFail) {
  util::Json doc = scenario_doc(node_platform());
  util::Json services{util::JsonArray{}};
  services.push_back(util::Json{util::JsonObject{}}.set("name", "s").set("type", "tape_robot"));
  doc.set("services", std::move(services));
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(doc)), storage::StorageError);

  doc = scenario_doc(node_platform());
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "synthetic")
                          .set("input_size", "1 GB")
                          .set("service", "missing"));
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(doc)), ScenarioError);
}

TEST(ScenarioRunner, CgroupBackendRequiresAndHonorsMemoryLimit) {
  util::Json doc = scenario_doc(node_platform());
  util::Json services{util::JsonArray{}};
  services.push_back(
      util::Json{util::JsonObject{}}.set("name", "store").set("type", "cgroup_local"));
  doc.set("services", services);
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(doc)), storage::StorageError);

  auto makespan_with_limit = [&](const std::string& limit) {
    util::Json limited = scenario_doc(node_platform());
    util::Json svcs{util::JsonArray{}};
    svcs.push_back(util::Json{util::JsonObject{}}
                       .set("name", "store")
                       .set("type", "cgroup_local")
                       .set("memory_limit", limit));
    limited.set("services", std::move(svcs));
    limited.set("workload", util::Json{util::JsonObject{}}
                                .set("type", "synthetic")
                                .set("input_size", "4 GB"));
    return run_scenario(ScenarioSpec::parse(limited)).makespan;
  };
  // Page-cache starvation: a tight cgroup limit costs I/O time.
  EXPECT_GT(makespan_with_limit("6 GB"), makespan_with_limit("30 GB"));
}

TEST(ScenarioRunner, BurstBufferDrainsResultsToTheServer) {
  util::Json doc = scenario_doc(cluster_platform());
  doc.set("name", "bb");
  util::Json target = util::Json{util::JsonObject{}}
                          .set("server_host", "storage0")
                          .set("server_disk", "nfs-ssd");
  util::Json svcs{util::JsonArray{}};
  svcs.push_back(util::Json{util::JsonObject{}}
                     .set("name", "bb")
                     .set("type", "burst_buffer")
                     .set("host", "compute0")
                     .set("disk", "ssd0")
                     .set("target", std::move(target))
                     .set("drain_files", util::Json{util::JsonArray{}}
                                             .push_back("a0:file4")
                                             .push_back("a1:file4")));
  doc.set("services", std::move(svcs));
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "synthetic")
                          .set("input_size", "2 GB")
                          .set("instances", 2));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  EXPECT_EQ(result.tasks.size(), 6u);
  // The drainer held the simulation open until both final outputs were
  // durable, so the makespan covers the staging writes.
  EXPECT_GT(result.makespan, result.tasks.back().end);
}

TEST(ScenarioRunner, BurstBufferToleratesDuplicateDrainEntries) {
  // Regression: a duplicated drain_files entry used to make the drainer's
  // termination count unreachable, hanging the simulation.
  util::Json doc = scenario_doc(cluster_platform());
  util::Json target = util::Json{util::JsonObject{}}
                          .set("server_host", "storage0")
                          .set("server_disk", "nfs-ssd");
  util::Json svcs{util::JsonArray{}};
  svcs.push_back(util::Json{util::JsonObject{}}
                     .set("name", "bb")
                     .set("type", "burst_buffer")
                     .set("host", "compute0")
                     .set("target", std::move(target))
                     .set("drain_files", util::Json{util::JsonArray{}}
                                             .push_back("a0:file4")
                                             .push_back("a0:file4")));
  doc.set("services", std::move(svcs));
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "synthetic")
                          .set("input_size", "1 GB"));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  EXPECT_GT(result.makespan, 0.0);
}

TEST(ScenarioRunner, MultiTenantStaggersArrivals) {
  auto build = [&](double stagger) {
    util::Json doc = scenario_doc(node_platform());
    util::Json tenant_a = util::Json{util::JsonObject{}}
                              .set("name", "alpha")
                              .set("type", "synthetic")
                              .set("input_size", "2 GB")
                              .set("instances", 2)
                              .set("stagger", stagger);
    util::Json tenant_b = util::Json{util::JsonObject{}}
                              .set("name", "beta")
                              .set("type", "nighres")
                              .set("arrival", stagger / 2.0);
    doc.set("workload",
            util::Json{util::JsonObject{}}
                .set("type", "multi_tenant")
                .set("tenants",
                     util::Json{util::JsonArray{}}.push_back(tenant_a).push_back(tenant_b)));
    return run_scenario(ScenarioSpec::parse(doc));
  };
  RunResult together = build(0.0);
  EXPECT_EQ(together.tasks.size(), 2u * 3u + 4u);
  EXPECT_TRUE(together.task("alpha:a1:task1").name == "alpha:a1:task1");
  EXPECT_NO_THROW((void)together.task("beta:a0:skull_stripping"));

  RunResult staggered = build(500.0);
  EXPECT_EQ(staggered.tasks.size(), together.tasks.size());
  // alpha's second instance could not start before its arrival.
  EXPECT_GE(staggered.task("alpha:a1:task1").start, 500.0);
  EXPECT_GE(staggered.task("beta:a0:skull_stripping").start, 250.0);
  EXPECT_GT(staggered.makespan, together.makespan);
}

TEST(ScenarioRunner, PerTenantServicesGetTheirOwnCacheParams) {
  util::Json doc = scenario_doc(node_platform());
  util::Json svcs{util::JsonArray{}};
  svcs.push_back(util::Json{util::JsonObject{}}.set("name", "cached").set("type", "local"));
  svcs.push_back(util::Json{util::JsonObject{}}
                     .set("name", "throttled")
                     .set("type", "local")
                     .set("params", util::Json{util::JsonObject{}}.set("dirty_ratio", 0.01)));
  doc.set("services", std::move(svcs));
  util::Json tenant_fast = util::Json{util::JsonObject{}}
                               .set("name", "fast")
                               .set("type", "synthetic")
                               .set("input_size", "2 GB")
                               .set("service", "cached");
  util::Json tenant_slow = util::Json{util::JsonObject{}}
                               .set("name", "slow")
                               .set("type", "synthetic")
                               .set("input_size", "2 GB")
                               .set("service", "throttled");
  doc.set("workload",
          util::Json{util::JsonObject{}}
              .set("type", "multi_tenant")
              .set("tenants",
                   util::Json{util::JsonArray{}}.push_back(tenant_fast).push_back(tenant_slow)));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  // Same pipeline, but the 1% dirty budget forces synchronous flushing on
  // the throttled tenant's writes.
  EXPECT_GT(result.task("slow:a0:task1").write_time(),
            result.task("fast:a0:task1").write_time());
}

TEST(ScenarioRunner, DagWorkloadRunsFromInlineDocument) {
  util::Json doc = scenario_doc(node_platform());
  util::Json wf_doc = util::Json::parse(R"json({
    "tasks": [
      {"name": "ingest", "cpu_seconds": 2,
       "inputs":  [{"name": "raw", "size": "1 GB"}],
       "outputs": [{"name": "clean", "size": "500 MB"}]},
      {"name": "report", "cpu_seconds": 1,
       "inputs":  [{"name": "clean", "size": "500 MB"}],
       "outputs": [{"name": "summary", "size": "10 MB"}]}
    ]
  })json");
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "dag")
                          .set("workflow", wf_doc)
                          .set("instances", 2));
  RunResult result = run_scenario(ScenarioSpec::parse(doc));
  EXPECT_EQ(result.tasks.size(), 4u);
  EXPECT_NO_THROW((void)result.task("a0:ingest"));
  EXPECT_NO_THROW((void)result.task("a1:report"));
}

// --- Fault injection: events, retry, failure policy -----------------------

/// A one-node scenario with a single long task, for crash tests.
util::Json crash_doc(double cpu_seconds) {
  util::Json doc = scenario_doc(node_platform());
  util::Json wf_doc{util::JsonObject{}};
  util::Json tasks{util::JsonArray{}};
  util::Json t{util::JsonObject{}};
  t.set("name", "slow");
  t.set("cpu_seconds", cpu_seconds);
  tasks.push_back(std::move(t));
  wf_doc.set("tasks", std::move(tasks));
  doc.set("workload", util::Json{util::JsonObject{}}
                          .set("type", "dag")
                          .set("workflow", std::move(wf_doc))
                          .set("instances", 1));
  return doc;
}

TEST(ScenarioSpec, ParsesAndRoundTripsFaultKeys) {
  util::Json doc = scenario_doc(cluster_platform());
  doc.set("services", util::Json::parse(R"json([
    {"type": "local", "name": "store"},
    {"type": "nfs", "name": "share", "host": "compute0", "server_host": "storage0",
     "server_disk": "nfs-ssd"}
  ])json"));
  doc.set("retry", util::Json::parse(R"json({"max_attempts": 3, "backoff": 5})json"));
  doc.set("on_task_failure", "continue");
  doc.set("events", util::Json::parse(R"json([
    {"type": "service_degrade", "time": 10, "service": "share", "factor": 0.5},
    {"type": "host_crash", "time": 20, "host": "compute0", "restart_at": 30},
    {"type": "service_restore", "time": 40, "service": "share"},
    {"type": "service_add", "time": 50, "service": {"name": "extra", "type": "local"}},
    {"type": "tenant_arrival", "time": 60, "prefix": "late:",
     "workload": {"type": "synthetic", "instances": 1}},
    {"type": "service_remove", "time": 70, "service": "extra"}
  ])json"));
  const ScenarioSpec spec = ScenarioSpec::parse(doc);
  EXPECT_TRUE(spec.has_retry);
  EXPECT_EQ(spec.retry.max_attempts, 3);
  EXPECT_DOUBLE_EQ(spec.retry.backoff, 5.0);
  EXPECT_EQ(spec.on_task_failure, "continue");
  ASSERT_EQ(spec.events.size(), 6u);
  EXPECT_EQ(spec.events[1].type, "host_crash");
  EXPECT_DOUBLE_EQ(spec.events[1].restart_at, 30.0);
  EXPECT_EQ(spec.events[3].service, "extra");
  EXPECT_EQ(spec.events[4].prefix, "late:");
  // The effective dump parses back to the same effective dump (the
  // stability that keeps recorded logs replayable from their header).
  const util::Json dump = spec.to_json();
  EXPECT_EQ(ScenarioSpec::parse(dump).to_json().dump(), dump.dump());
}

TEST(ScenarioSpec, OmitsFaultKeysWhenUnused) {
  // v1 recorded logs embed the effective spec; a fault-free scenario must
  // not grow new keys.
  const util::Json dump = ScenarioSpec::parse(scenario_doc(node_platform())).to_json();
  EXPECT_FALSE(dump.contains("retry"));
  EXPECT_FALSE(dump.contains("on_task_failure"));
  EXPECT_FALSE(dump.contains("events"));
}

TEST(ScenarioSpec, RejectsMalformedFaultKeys) {
  auto with = [](const char* key, const std::string& json) {
    util::Json doc{util::JsonObject{}};
    doc.set("platform", util::Json::parse(R"json({"hosts": [
      {"name": "node0", "speed_gflops": 1, "cores": 8, "ram": "32 GB",
       "memory": {"read_bw_MBps": 100, "write_bw_MBps": 100},
       "disks": [{"name": "d", "read_bw_MBps": 10, "write_bw_MBps": 10}]}
    ]})json"));
    doc.set(key, util::Json::parse(json));
    return doc;
  };
  EXPECT_THROW(ScenarioSpec::parse(with("retry", R"({"max_attempts": 0})")), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(with("retry", R"({"backoff": -1})")), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(with("on_task_failure", R"("retry")")), ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(with("events", R"([{"type": "meteor", "time": 1}])")),
               ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(
                   with("events", R"([{"type": "host_crash", "time": 1, "host": "nope"}])")),
               ScenarioError);
  EXPECT_THROW(
      ScenarioSpec::parse(with("events", R"([{"type": "host_crash", "time": 5,
                                              "host": "node0", "restart_at": 5}])")),
      ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(with("events", R"([{"type": "service_degrade", "time": 1,
                                                       "service": "store", "factor": 1.5}])")),
               ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(with("events", R"([{"type": "service_degrade", "time": 1,
                                                       "service": "ghost", "factor": 0.5}])")),
               ScenarioError);
  // The default service cannot be removed; unknown prefix-less tenants fail.
  EXPECT_THROW(ScenarioSpec::parse(with("events", R"([{"type": "service_remove", "time": 1,
                                                       "service": "store"}])")),
               ScenarioError);
  EXPECT_THROW(ScenarioSpec::parse(
                   with("events", R"([{"type": "tenant_arrival", "time": 1,
                                       "workload": {"type": "synthetic"}}])")),
               ScenarioError);
}

TEST(ScenarioRunner, HostCrashWithRetryRecovers) {
  util::Json doc = crash_doc(100.0);
  doc.set("retry", util::Json::parse(R"json({"max_attempts": 2, "backoff": 0})json"));
  doc.set("events", util::Json::parse(R"json([
    {"type": "host_crash", "time": 50, "host": "node0", "restart_at": 60}
  ])json"));
  const ScenarioSpec spec = ScenarioSpec::parse(doc);
  const RunResult result = run_scenario(spec);
  // Attempt 1 dies at 50; attempt 2 restarts from scratch at 60.
  ASSERT_EQ(result.tasks.size(), 1u);
  EXPECT_EQ(result.tasks[0].attempts, 2);
  ASSERT_EQ(result.tasks[0].retries.size(), 1u);
  EXPECT_DOUBLE_EQ(result.tasks[0].retries[0].end, 50.0);
  EXPECT_EQ(result.retried_tasks, 1u);
  EXPECT_EQ(result.disruptions_fired, 2u);  // crash + restart
  EXPECT_TRUE(result.failed.empty());
  EXPECT_GT(result.makespan, 155.0);  // > restart + full rerun
  // Determinism under failure: a second run is bit-identical.
  EXPECT_EQ(run_scenario(spec).makespan, result.makespan);
}

TEST(ScenarioRunner, OnTaskFailureFailRaisesWithRootCause) {
  util::Json doc = crash_doc(100.0);  // default retry: one attempt
  doc.set("events", util::Json::parse(R"json([
    {"type": "host_crash", "time": 50, "host": "node0", "restart_at": 60}
  ])json"));
  try {
    run_scenario(ScenarioSpec::parse(doc));
    FAIL() << "expected a permanent-failure error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("'slow'"), std::string::npos) << e.what();
  }
}

TEST(ScenarioRunner, OnTaskFailureContinueYieldsPartialResult) {
  util::Json doc = scenario_doc(node_platform());
  doc.set("workload", util::Json::parse(R"json({
    "type": "dag", "instances": 1,
    "workflow": {"tasks": [
      {"name": "quick", "cpu_seconds": 5},
      {"name": "slow", "cpu_seconds": 100}
    ]}
  })json"));
  doc.set("on_task_failure", "continue");
  doc.set("events", util::Json::parse(R"json([
    {"type": "host_crash", "time": 50, "host": "node0"}
  ])json"));
  const RunResult result = run_scenario(ScenarioSpec::parse(doc));
  // "quick" finished before the crash; "slow" died with no attempts left
  // and no restart ever came.
  ASSERT_EQ(result.tasks.size(), 1u);
  EXPECT_EQ(result.tasks[0].name, "quick");
  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0].name, "slow");
  EXPECT_EQ(result.failed[0].attempts, 1);
  EXPECT_EQ(result.disruptions_fired, 1u);
}

TEST(ScenarioRunner, FailedRunLeavesTheProcessReusable) {
  // Error-path hygiene: a run that throws (fail-fast crash with no retry)
  // must not wedge the process — the next scenario runs normally.
  util::Json bad = crash_doc(100.0);
  bad.set("events", util::Json::parse(R"json([
    {"type": "host_crash", "time": 50, "host": "node0", "restart_at": 60}
  ])json"));
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(bad)), std::exception);
  // A spec that fails during *setup* (unknown backend) as well.
  util::Json worse = scenario_doc(node_platform());
  worse.set("services",
            util::Json::parse(R"json([{"type": "antigravity", "name": "s"}])json"));
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(worse)), std::exception);
  const RunResult ok = run_scenario(ScenarioSpec::parse(crash_doc(10.0)));
  EXPECT_EQ(ok.tasks.size(), 1u);
  EXPECT_TRUE(ok.failed.empty());
}

}  // namespace
}  // namespace pcs::scenario
