// Engine edge cases: degenerate activities, timer ordering, re-running,
// lock guards, tracer interplay, and error paths.
#include <gtest/gtest.h>

#include "simcore/engine.hpp"
#include "simcore/sync.hpp"
#include "simcore/trace.hpp"
#include "test_helpers.hpp"

namespace pcs::sim {
namespace {

TEST(EngineEdge, SpawnEmptyTaskThrows) {
  Engine engine;
  EXPECT_THROW(engine.spawn("empty", Task<>{}), SimulationError);
}

TEST(EngineEdge, UnconstrainedActivityCompletesInstantly) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> {
    co_await e.submit("free", {}, 1e12);  // no claims, no bound
  };
  test::run_actor(engine, body(engine));
  EXPECT_LT(engine.now(), 1e-6);
}

TEST(EngineEdge, BoundOnlyActivityRunsAtBound) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> {
    co_await e.submit("bounded", {}, 100.0, /*bound=*/10.0);
  };
  test::run_actor(engine, body(engine));
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(EngineEdge, SimultaneousCompletionsStaySimultaneous) {
  Engine engine;
  Resource* r = engine.new_resource("r", 10.0);
  std::vector<double> ends;
  auto worker = [&](Engine& e) -> Task<> {
    co_await e.submit("w", sim::one(r), 50.0);
    ends.push_back(e.now());
  };
  for (int i = 0; i < 5; ++i) engine.spawn("w" + std::to_string(i), worker(engine));
  engine.run();
  ASSERT_EQ(ends.size(), 5u);
  for (double t : ends) EXPECT_DOUBLE_EQ(t, 25.0);  // 5x50 over 10/s
}

TEST(EngineEdge, TimersAtSameInstantFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  auto sleeper = [&order](Engine& e, int id) -> Task<> {
    co_await e.sleep_until(5.0);
    order.push_back(id);
  };
  for (int i = 0; i < 4; ++i) engine.spawn("s" + std::to_string(i), sleeper(engine, i));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EngineEdge, SleepUntilPastResumesNow) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> {
    co_await e.sleep(10.0);
    co_await e.sleep_until(3.0);  // already past: no travel back in time
    EXPECT_DOUBLE_EQ(e.now(), 10.0);
  };
  test::run_actor(engine, body(engine));
}

TEST(EngineEdge, RunCanBeCalledAgainAfterNewSpawns) {
  Engine engine;
  auto phase = [](Engine& e, double dt) -> Task<> { co_await e.sleep(dt); };
  engine.spawn("p1", phase(engine, 5.0));
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  engine.spawn("p2", phase(engine, 2.0));
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 7.0);
}

TEST(EngineEdge, RunUntilZeroThenFullRun) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> { co_await e.sleep(4.0); };
  engine.spawn("b", body(engine));
  engine.run_until(0.0);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(EngineEdge, DaemonExceptionSurfaces) {
  Engine engine;
  auto daemon = [](Engine& e) -> Task<> {
    co_await e.sleep(1.0);
    throw std::runtime_error("daemon died");
  };
  auto main_actor = [](Engine& e) -> Task<> { co_await e.sleep(5.0); };
  engine.spawn("daemon", daemon(engine), /*daemon=*/true);
  engine.spawn("main", main_actor(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(EngineEdge, LockGuardReleasesOnScopeExit) {
  Engine engine;
  Mutex mutex(engine);
  double acquired_at = -1.0;
  auto holder = [&](Engine& e) -> Task<> {
    {
      co_await mutex.lock();
      LockGuard guard(mutex, LockGuard::adopt);
      co_await e.sleep(3.0);
    }  // guard releases here
    co_await e.sleep(10.0);
  };
  auto waiter = [&](Engine& e) -> Task<> {
    co_await e.sleep(0.5);
    co_await mutex.lock();
    acquired_at = e.now();
    mutex.unlock();
  };
  engine.spawn("h", holder(engine));
  engine.spawn("w", waiter(engine));
  engine.run();
  EXPECT_DOUBLE_EQ(acquired_at, 3.0);
}

TEST(EngineEdge, TracerSeesConcurrentSpans) {
  Engine engine;
  Tracer tracer;
  engine.set_tracer(&tracer);
  Resource* r = engine.new_resource("r", 10.0);
  auto worker = [r](Engine& e, const std::string& label) -> Task<> {
    co_await e.submit(label, sim::one(r), 50.0);
  };
  engine.spawn("a", worker(engine, "io:a"));
  engine.spawn("b", worker(engine, "io:b"));
  engine.run();
  ASSERT_EQ(tracer.span_count(), 2u);
  // Fair sharing: both spans cover the whole [0, 10] interval.
  EXPECT_DOUBLE_EQ(tracer.total_time("io:"), 20.0);
}

TEST(EngineEdge, SchedulingPointsAdvanceMonotonically) {
  Engine engine;
  Resource* r = engine.new_resource("r", 5.0);
  auto body = [r](Engine& e) -> Task<> {
    double last = e.now();
    for (int i = 0; i < 20; ++i) {
      co_await e.submit("step", sim::one(r), 1.0 + i);
      EXPECT_GE(e.now(), last);
      last = e.now();
    }
  };
  test::run_actor(engine, body(engine));
  EXPECT_GE(engine.scheduling_points(), 20u);
}

TEST(EngineEdge, ZeroCapacityResourceDeadlocks) {
  Engine engine;
  Resource* r = engine.new_resource("r", 0.0);
  auto body = [r](Engine& e) -> Task<> {
    co_await e.submit("stuck", sim::one(r), 10.0);
  };
  engine.spawn("b", body(engine));
  EXPECT_THROW(engine.run(), SimulationError);
}

TEST(EngineEdge, RunIsNotReentrant) {
  Engine engine;
  bool threw = false;
  auto body = [&](Engine& e) -> Task<> {
    try {
      e.run();
    } catch (const SimulationError&) {
      threw = true;
    }
    co_return;
  };
  test::run_actor(engine, body(engine));
  EXPECT_TRUE(threw);
}

TEST(EngineEdge, ManySmallActivitiesPerformAndComplete) {
  Engine engine;
  Resource* r = engine.new_resource("r", 1000.0);
  int done = 0;
  auto worker = [&](Engine& e) -> Task<> {
    for (int i = 0; i < 200; ++i) co_await e.submit("op", sim::one(r), 1.0);
    ++done;
  };
  for (int i = 0; i < 10; ++i) engine.spawn("w" + std::to_string(i), worker(engine));
  engine.run();
  EXPECT_EQ(done, 10);
  // 10 workers x 200 sequential 1-unit ops on 1000/s: each op runs at
  // 100/s (10-way sharing) -> 0.01 s per op -> 2 s total.
  EXPECT_NEAR(engine.now(), 2.0, 1e-9);
}

}  // namespace
}  // namespace pcs::sim
