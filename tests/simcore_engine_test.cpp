#include "simcore/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simcore/sync.hpp"
#include "test_helpers.hpp"

namespace pcs::sim {
namespace {

TEST(Engine, EmptyRunStaysAtZero) {
  Engine engine;
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Engine, SleepAdvancesClock) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> { co_await e.sleep(5.0); };
  test::run_actor(engine, body(engine));
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(Engine, NonPositiveSleepIsImmediate) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> {
    co_await e.sleep(0.0);
    co_await e.sleep(-3.0);
  };
  test::run_actor(engine, body(engine));
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Engine, SequentialSleepsAccumulate) {
  Engine engine;
  std::vector<double> stamps;
  auto body = [&stamps](Engine& e) -> Task<> {
    co_await e.sleep(1.0);
    stamps.push_back(e.now());
    co_await e.sleep(2.5);
    stamps.push_back(e.now());
  };
  test::run_actor(engine, body(engine));
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_DOUBLE_EQ(stamps[0], 1.0);
  EXPECT_DOUBLE_EQ(stamps[1], 3.5);
}

TEST(Engine, SingleActivityDuration) {
  Engine engine;
  Resource* disk = engine.new_resource("disk", 10.0);  // 10 B/s
  auto body = [disk](Engine& e) -> Task<> {
    co_await e.submit("io", sim::one(disk), 100.0);
  };
  test::run_actor(engine, body(engine));
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, ZeroAmountCompletesInstantly) {
  Engine engine;
  Resource* disk = engine.new_resource("disk", 10.0);
  auto body = [disk](Engine& e) -> Task<> {
    co_await e.submit("noop", sim::one(disk), 0.0);
    co_await e.submit("neg", sim::one(disk), -5.0);
  };
  test::run_actor(engine, body(engine));
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Engine, ActorSpawnedDuringRunExecutes) {
  Engine engine;
  bool inner_ran = false;
  auto inner = [&inner_ran](Engine& e) -> Task<> {
    co_await e.sleep(1.0);
    inner_ran = true;
  };
  auto outer = [&](Engine& e) -> Task<> {
    co_await e.sleep(1.0);
    e.spawn("inner", inner(e));
    co_return;
  };
  test::run_actor(engine, outer(engine));
  EXPECT_TRUE(inner_ran);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(Engine, NestedTaskPropagatesValue) {
  Engine engine;
  auto child = [](Engine& e) -> Task<double> {
    co_await e.sleep(2.0);
    co_return 21.0;
  };
  double result = 0.0;
  auto parent = [&](Engine& e) -> Task<> {
    double v = co_await child(e);
    result = 2 * v;
  };
  test::run_actor(engine, parent(engine));
  EXPECT_DOUBLE_EQ(result, 42.0);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(Engine, ExceptionInActorPropagates) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> {
    co_await e.sleep(1.0);
    throw std::runtime_error("boom");
  };
  engine.spawn("thrower", body(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, ExceptionInNestedTaskReachesParent) {
  Engine engine;
  auto child = [](Engine& e) -> Task<> {
    co_await e.sleep(1.0);
    throw std::logic_error("inner");
  };
  bool caught = false;
  auto parent = [&](Engine& e) -> Task<> {
    try {
      co_await child(e);
    } catch (const std::logic_error&) {
      caught = true;
    }
  };
  test::run_actor(engine, parent(engine));
  EXPECT_TRUE(caught);
}

TEST(Engine, DeadlockDetected) {
  Engine engine;
  Mutex mutex(engine);
  auto body = [&mutex](Engine& /*e*/) -> Task<> {
    co_await mutex.lock();
    co_await mutex.lock();  // self-deadlock
  };
  engine.spawn("stuck", body(engine));
  EXPECT_THROW(engine.run(), SimulationError);
}

TEST(Engine, DaemonDoesNotBlockTermination) {
  Engine engine;
  int beats = 0;
  auto daemon = [&beats](Engine& e) -> Task<> {
    while (true) {
      co_await e.sleep(1.0);
      ++beats;
    }
  };
  auto main_actor = [](Engine& e) -> Task<> { co_await e.sleep(3.5); };
  engine.spawn("heartbeat", daemon(engine), /*daemon=*/true);
  engine.spawn("main", main_actor(engine));
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 3.5);
  EXPECT_EQ(beats, 3);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> { co_await e.sleep(100.0); };
  engine.spawn("sleeper", body(engine));
  engine.run_until(30.0);
  EXPECT_DOUBLE_EQ(engine.now(), 30.0);
  EXPECT_FALSE(engine.all_actors_done());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 100.0);
  EXPECT_TRUE(engine.all_actors_done());
}

TEST(Engine, DetachedActivityProgressesAlone) {
  Engine engine;
  Resource* disk = engine.new_resource("disk", 10.0);
  ActivityPtr detached;
  auto body = [&](Engine& e) -> Task<> {
    detached = e.submit_detached("bg", sim::one(disk), 50.0);
    co_await e.sleep(10.0);
  };
  test::run_actor(engine, body(engine));
  ASSERT_TRUE(detached != nullptr);
  EXPECT_TRUE(detached->done());
  EXPECT_DOUBLE_EQ(detached->end_time(), 5.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, DeterministicReplay) {
  auto run_once = [] {
    Engine engine;
    Resource* r = engine.new_resource("r", 7.0);
    auto worker = [r](Engine& e, double amount, double delay) -> Task<> {
      co_await e.sleep(delay);
      co_await e.submit("w", sim::one(r), amount);
    };
    for (int i = 0; i < 5; ++i) {
      engine.spawn("w" + std::to_string(i), worker(engine, 10.0 + i, 0.5 * i));
    }
    engine.run();
    return std::pair{engine.now(), engine.scheduling_points()};
  };
  auto [t1, s1] = run_once();
  auto [t2, s2] = run_once();
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_EQ(s1, s2);
}

TEST(Engine, ManyActorsAllComplete) {
  Engine engine;
  Resource* r = engine.new_resource("r", 100.0);
  int done = 0;
  auto worker = [&done, r](Engine& e) -> Task<> {
    co_await e.submit("w", sim::one(r), 10.0);
    ++done;
  };
  for (int i = 0; i < 50; ++i) engine.spawn("w" + std::to_string(i), worker(engine));
  engine.run();
  EXPECT_EQ(done, 50);
  // 50 activities x 10 units sharing 100/s: all finish together at 5 s.
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

}  // namespace
}  // namespace pcs::sim
