// Max-min fair-sharing semantics of the engine's resource model — the
// property the paper's concurrent experiments (Exp 2 / Exp 3) depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "simcore/engine.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace pcs::sim {
namespace {

TEST(FairShare, EqualSplitBetweenTwo) {
  Engine engine;
  Resource* disk = engine.new_resource("disk", 10.0);
  double t_a = 0.0;
  double t_b = 0.0;
  auto worker = [disk](Engine& e, double amount, double* out) -> Task<> {
    co_await e.submit("w", sim::one(disk), amount);
    *out = e.now();
  };
  engine.spawn("a", worker(engine, 100.0, &t_a));
  engine.spawn("b", worker(engine, 100.0, &t_b));
  engine.run();
  // Both share 10 B/s -> 5 B/s each -> 20 s.
  EXPECT_DOUBLE_EQ(t_a, 20.0);
  EXPECT_DOUBLE_EQ(t_b, 20.0);
}

TEST(FairShare, StaggeredArrivalRebalances) {
  Engine engine;
  Resource* disk = engine.new_resource("disk", 10.0);
  double t_a = 0.0;
  double t_b = 0.0;
  auto first = [&](Engine& e) -> Task<> {
    co_await e.submit("a", sim::one(disk), 100.0);
    t_a = e.now();
  };
  auto second = [&](Engine& e) -> Task<> {
    co_await e.sleep(5.0);
    co_await e.submit("b", sim::one(disk), 50.0);
    t_b = e.now();
  };
  engine.spawn("a", first(engine));
  engine.spawn("b", second(engine));
  engine.run();
  // 0-5 s: A alone at 10 B/s -> 50 B done.  5-15 s: both at 5 B/s; A's
  // remaining 50 B and B's 50 B finish together at t=15.
  EXPECT_DOUBLE_EQ(t_a, 15.0);
  EXPECT_DOUBLE_EQ(t_b, 15.0);
}

TEST(FairShare, BottleneckAcrossTwoResources) {
  Engine engine;
  Resource* link = engine.new_resource("link", 10.0);
  Resource* disk = engine.new_resource("disk", 4.0);
  auto body = [&](Engine& e) -> Task<> {
    // Composite flow (an NFS transfer): rate = min share = 4 B/s.
    std::vector<Claim> claims{{link, 1.0}, {disk, 1.0}};
    co_await e.submit("nfs", claims, 40.0);
  };
  test::run_actor(engine, body(engine));
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(FairShare, UnusedCapacityRedistributed) {
  Engine engine;
  Resource* link = engine.new_resource("link", 10.0);
  Resource* disk = engine.new_resource("disk", 4.0);
  double t_composite = 0.0;
  double t_pure = 0.0;
  auto composite = [&](Engine& e) -> Task<> {
    std::vector<Claim> claims{{link, 1.0}, {disk, 1.0}};
    co_await e.submit("c", claims, 40.0);
    t_composite = e.now();
  };
  auto pure = [&](Engine& e) -> Task<> {
    co_await e.submit("p", sim::one(link), 60.0);
    t_pure = e.now();
  };
  engine.spawn("c", composite(engine));
  engine.spawn("p", pure(engine));
  engine.run();
  // Max-min: composite is disk-bound at 4 B/s; the pure link flow gets the
  // remaining 6 B/s.  Composite: 40/4 = 10 s.  Pure: 60/6 = 10 s.
  EXPECT_DOUBLE_EQ(t_composite, 10.0);
  EXPECT_DOUBLE_EQ(t_pure, 10.0);
}

TEST(FairShare, PerActivityBound) {
  Engine engine;
  Resource* cpu = engine.new_resource("cpu", 10.0);
  double t_bounded = 0.0;
  double t_free = 0.0;
  auto bounded = [&](Engine& e) -> Task<> {
    co_await e.submit("b", sim::one(cpu), 30.0, /*bound=*/3.0);
    t_bounded = e.now();
  };
  auto free_flow = [&](Engine& e) -> Task<> {
    co_await e.submit("f", sim::one(cpu), 70.0);
    t_free = e.now();
  };
  engine.spawn("b", bounded(engine));
  engine.spawn("f", free_flow(engine));
  engine.run();
  // Bounded runs at 3; the other takes the remaining 7.  Both end at 10 s.
  EXPECT_DOUBLE_EQ(t_bounded, 10.0);
  EXPECT_DOUBLE_EQ(t_free, 10.0);
}

TEST(FairShare, BoundAboveFairShareIsInert) {
  Engine engine;
  Resource* cpu = engine.new_resource("cpu", 10.0);
  auto worker = [cpu](Engine& e) -> Task<> {
    co_await e.submit("w", sim::one(cpu), 50.0, /*bound=*/100.0);
  };
  engine.spawn("a", worker(engine));
  engine.spawn("b", worker(engine));
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);  // plain 5 B/s each
}

TEST(FairShare, WeightedClaimConsumesMore) {
  Engine engine;
  Resource* r = engine.new_resource("r", 9.0);
  double t_heavy = 0.0;
  double t_light = 0.0;
  auto heavy = [&](Engine& e) -> Task<> {
    std::vector<Claim> claims{{r, 2.0}};  // each unit of rate consumes 2
    co_await e.submit("h", claims, 30.0);
    t_heavy = e.now();
  };
  auto light = [&](Engine& e) -> Task<> {
    co_await e.submit("l", sim::one(r), 30.0);
    t_light = e.now();
  };
  engine.spawn("h", heavy(engine));
  engine.spawn("l", light(engine));
  engine.run();
  // Fair share: capacity 9, total weight 3 -> rate 3 each (heavy consumes
  // 6, light 3).  30 units / 3 per s = 10 s for both.
  EXPECT_DOUBLE_EQ(t_heavy, 10.0);
  EXPECT_DOUBLE_EQ(t_light, 10.0);
}

TEST(FairShare, CapacityChangeTakesEffect) {
  Engine engine;
  Resource* disk = engine.new_resource("disk", 10.0);
  auto controller = [disk](Engine& e) -> Task<> {
    co_await e.sleep(5.0);
    disk->set_capacity(5.0);
    // Force a scheduling point so the new capacity is observed.
    co_await e.submit("poke", sim::one(disk), 1e-9);
  };
  auto worker = [disk](Engine& e) -> Task<> {
    co_await e.submit("w", sim::one(disk), 100.0);
  };
  engine.spawn("ctrl", controller(engine));
  engine.spawn("w", worker(engine));
  engine.run();
  // 0-5 s at 10 B/s = 50 B; remaining 50 B at ~5 B/s = ~10 s -> ~15 s.
  EXPECT_NEAR(engine.now(), 15.0, 0.01);
}

TEST(FairShare, ThreeWayThenTwoWay) {
  Engine engine;
  Resource* disk = engine.new_resource("disk", 12.0);
  std::vector<double> ends(3);
  auto worker = [&](Engine& e, int i, double amount) -> Task<> {
    co_await e.submit("w", sim::one(disk), amount);
    ends[static_cast<std::size_t>(i)] = e.now();
  };
  engine.spawn("a", worker(engine, 0, 12.0));
  engine.spawn("b", worker(engine, 1, 24.0));
  engine.spawn("c", worker(engine, 2, 24.0));
  engine.run();
  // Phase 1: 4 B/s each; A done at t=3 (12 B).  B,C have 12 left, then get
  // 6 B/s each -> done at t = 3 + 2 = 5.
  EXPECT_DOUBLE_EQ(ends[0], 3.0);
  EXPECT_DOUBLE_EQ(ends[1], 5.0);
  EXPECT_DOUBLE_EQ(ends[2], 5.0);
}

// Property sweep: random topologies; verify no resource is oversubscribed
// and that every activity is pinned by a saturated resource or its own
// bound (the defining property of a max-min fair allocation).
class FairShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairShareProperty, RatesAreFeasibleAndMaxMin) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 17);
  Engine engine;
  std::vector<Resource*> resources;
  const int n_resources = 2 + static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < n_resources; ++i) {
    resources.push_back(engine.new_resource("r" + std::to_string(i), rng.uniform(1.0, 50.0)));
  }
  const std::size_t n_activities = 1 + rng.uniform_int(0, 9);
  std::vector<ActivityPtr> activities;
  std::vector<std::vector<Claim>> all_claims(n_activities);
  std::vector<double> bounds(n_activities, std::numeric_limits<double>::infinity());

  for (std::size_t i = 0; i < n_activities; ++i) {
    const std::size_t n_claims = 1 + rng.uniform_int(0, 2);
    std::vector<Resource*> chosen;
    for (std::size_t c = 0; c < n_claims; ++c) {
      Resource* r = resources[rng.uniform_int(0, resources.size() - 1)];
      // Avoid duplicate claims on the same resource within one activity.
      if (std::find(chosen.begin(), chosen.end(), r) == chosen.end()) chosen.push_back(r);
    }
    for (Resource* r : chosen) all_claims[i].push_back({r, 1.0});
    if (rng.bernoulli(0.3)) bounds[i] = rng.uniform(0.5, 20.0);
    activities.push_back(engine.submit_detached("act" + std::to_string(i), all_claims[i],
                                                /*amount=*/1e12, bounds[i]));
  }

  // One scheduling step computes the allocation; activities are far from
  // completion at t=1e-6 so every rate is still the initial solution.
  auto idler = [](Engine& e) -> Task<> { co_await e.sleep(1e-6); };
  engine.spawn("idler", idler(engine));
  engine.run();

  constexpr double kTol = 1e-6;
  // Feasibility: per-resource consumption <= capacity.
  std::map<Resource*, double> usage;
  for (std::size_t i = 0; i < n_activities; ++i) {
    for (const Claim& c : all_claims[i]) usage[c.resource] += activities[i]->rate() * c.weight;
  }
  for (const auto& [r, used] : usage) {
    EXPECT_LE(used, r->capacity() * (1.0 + kTol)) << r->name();
  }
  // Max-min: every activity is pinned by its bound or a saturated resource.
  for (std::size_t i = 0; i < n_activities; ++i) {
    const double rate = activities[i]->rate();
    EXPECT_GT(rate, 0.0);
    bool pinned = rate >= bounds[i] * (1.0 - kTol);
    for (const Claim& c : all_claims[i]) {
      if (usage[c.resource] >= c.resource->capacity() * (1.0 - kTol)) pinned = true;
    }
    EXPECT_TRUE(pinned) << "activity " << i << " rate " << rate << " is not pinned";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, FairShareProperty, ::testing::Range(0, 16));

}  // namespace
}  // namespace pcs::sim
