#include "simcore/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simcore/mailbox.hpp"
#include "test_helpers.hpp"

namespace pcs::sim {
namespace {

TEST(Mutex, UncontendedLockIsImmediate) {
  Engine engine;
  Mutex mutex(engine);
  auto body = [&mutex](Engine& /*e*/) -> Task<> {
    co_await mutex.lock();
    EXPECT_TRUE(mutex.locked());
    mutex.unlock();
    EXPECT_FALSE(mutex.locked());
    co_return;
  };
  test::run_actor(engine, body(engine));
}

TEST(Mutex, ContendedLockWaitsForHolder) {
  Engine engine;
  Mutex mutex(engine);
  std::vector<std::string> order;
  auto holder = [&](Engine& e) -> Task<> {
    co_await mutex.lock();
    order.push_back("holder-acquired");
    co_await e.sleep(5.0);
    order.push_back("holder-releases");
    mutex.unlock();
  };
  auto waiter = [&](Engine& e) -> Task<> {
    co_await e.sleep(1.0);  // ensure the holder goes first
    co_await mutex.lock();
    order.push_back("waiter-acquired");
    EXPECT_DOUBLE_EQ(e.now(), 5.0);
    mutex.unlock();
  };
  engine.spawn("holder", holder(engine));
  engine.spawn("waiter", waiter(engine));
  engine.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "holder-acquired");
  EXPECT_EQ(order[1], "holder-releases");
  EXPECT_EQ(order[2], "waiter-acquired");
}

TEST(Mutex, FifoHandoff) {
  Engine engine;
  Mutex mutex(engine);
  std::vector<int> order;
  auto worker = [&](Engine& e, int id) -> Task<> {
    co_await e.sleep(0.1 * id);
    co_await mutex.lock();
    order.push_back(id);
    co_await e.sleep(1.0);
    mutex.unlock();
  };
  for (int i = 0; i < 4; ++i) engine.spawn("w" + std::to_string(i), worker(engine, i));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Mutex, TryLock) {
  Engine engine;
  Mutex mutex(engine);
  EXPECT_TRUE(mutex.try_lock());
  EXPECT_FALSE(mutex.try_lock());
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(ConditionVariable, NotifyOneWakesOneWaiter) {
  Engine engine;
  Mutex mutex(engine);
  ConditionVariable cv(engine);
  int woken = 0;
  auto waiter = [&](Engine& e) -> Task<> {
    co_await mutex.lock();
    co_await cv.wait(mutex);
    ++woken;
    mutex.unlock();
    (void)e;
  };
  auto notifier = [&](Engine& e) -> Task<> {
    co_await e.sleep(1.0);
    cv.notify_one();
    co_await e.sleep(1.0);
    cv.notify_one();
  };
  engine.spawn("w1", waiter(engine));
  engine.spawn("w2", waiter(engine));
  engine.spawn("n", notifier(engine));
  engine.run();
  EXPECT_EQ(woken, 2);
}

TEST(ConditionVariable, NotifyAll) {
  Engine engine;
  Mutex mutex(engine);
  ConditionVariable cv(engine);
  int woken = 0;
  auto waiter = [&](Engine& e) -> Task<> {
    co_await mutex.lock();
    co_await cv.wait(mutex);
    ++woken;
    mutex.unlock();
    (void)e;
  };
  auto notifier = [&](Engine& e) -> Task<> {
    co_await e.sleep(2.0);
    cv.notify_all();
  };
  for (int i = 0; i < 5; ++i) engine.spawn("w" + std::to_string(i), waiter(engine));
  engine.spawn("n", notifier(engine));
  engine.run();
  EXPECT_EQ(woken, 5);
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(ConditionVariable, WaitReleasesMutex) {
  Engine engine;
  Mutex mutex(engine);
  ConditionVariable cv(engine);
  bool other_got_lock = false;
  auto waiter = [&](Engine& e) -> Task<> {
    co_await mutex.lock();
    co_await cv.wait(mutex);  // must release the mutex while waiting
    mutex.unlock();
    (void)e;
  };
  auto other = [&](Engine& e) -> Task<> {
    co_await e.sleep(1.0);
    co_await mutex.lock();
    other_got_lock = true;
    mutex.unlock();
    cv.notify_one();
  };
  engine.spawn("waiter", waiter(engine));
  engine.spawn("other", other(engine));
  engine.run();
  EXPECT_TRUE(other_got_lock);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine engine;
  Semaphore sem(engine, 2);
  int concurrent = 0;
  int peak = 0;
  auto worker = [&](Engine& e) -> Task<> {
    co_await sem.acquire();
    ++concurrent;
    peak = std::max(peak, concurrent);
    co_await e.sleep(1.0);
    --concurrent;
    sem.release();
  };
  for (int i = 0; i < 6; ++i) engine.spawn("w" + std::to_string(i), worker(engine));
  engine.run();
  EXPECT_EQ(peak, 2);
  // 6 workers, 2 at a time, 1 s each -> 3 s.
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Semaphore, ReleaseWithoutWaitersIncrements) {
  Engine engine;
  Semaphore sem(engine, 0);
  sem.release();
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Mailbox, PutThenGet) {
  Engine engine;
  Mailbox<int> box(engine);
  int received = 0;
  auto body = [&](Engine& e) -> Task<> {
    box.put(41);
    received = co_await box.get();
    (void)e;
  };
  test::run_actor(engine, body(engine));
  EXPECT_EQ(received, 41);
}

TEST(Mailbox, GetBlocksUntilPut) {
  Engine engine;
  Mailbox<std::string> box(engine);
  std::string received;
  double received_at = -1.0;
  auto consumer = [&](Engine& e) -> Task<> {
    received = co_await box.get();
    received_at = e.now();
  };
  auto producer = [&](Engine& e) -> Task<> {
    co_await e.sleep(3.0);
    box.put("hello");
  };
  engine.spawn("consumer", consumer(engine));
  engine.spawn("producer", producer(engine));
  engine.run();
  EXPECT_EQ(received, "hello");
  EXPECT_DOUBLE_EQ(received_at, 3.0);
}

TEST(Mailbox, PreservesFifoOrder) {
  Engine engine;
  Mailbox<int> box(engine);
  std::vector<int> received;
  auto consumer = [&](Engine& e) -> Task<> {
    for (int i = 0; i < 3; ++i) received.push_back(co_await box.get());
    (void)e;
  };
  auto producer = [&](Engine& e) -> Task<> {
    for (int i = 1; i <= 3; ++i) {
      box.put(i);
      co_await e.sleep(1.0);
    }
  };
  engine.spawn("consumer", consumer(engine));
  engine.spawn("producer", producer(engine));
  engine.run();
  EXPECT_EQ(received, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace pcs::sim
