// fsync / invalidation / unlink semantics and the dirty_background_ratio
// extension, across the Memory Manager, local storage and NFS mounts.
#include <gtest/gtest.h>

#include "pagecache/memory_manager.hpp"
#include "storage/local_storage.hpp"
#include "storage/nfs.hpp"
#include "test_helpers.hpp"

namespace pcs {
namespace {

class StorageOpsTest : public ::testing::Test {
 protected:
  StorageOpsTest() {
    host_ = std::make_unique<plat::Host>(engine_, test::small_host("h", 1000.0, 100.0));
    plat::DiskSpec spec;
    spec.name = "d0";
    spec.read_bw = 10.0;
    spec.write_bw = 10.0;
    disk_ = host_->add_disk(engine_, spec);
  }

  sim::Engine engine_;
  std::unique_ptr<plat::Host> host_;
  plat::Disk* disk_ = nullptr;
};

TEST_F(StorageOpsTest, FsyncWritesAllDirtyBlocksOfFile) {
  storage::LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("a", 100.0, 25.0);
    co_await st.write_file("b", 60.0, 30.0);
    double t0 = e.now();
    co_await st.sync_file("a");
    // 100 B of a at 10 B/s; b's dirty data is untouched.
    EXPECT_DOUBLE_EQ(e.now() - t0, 10.0);
  };
  test::run_actor(engine_, body(engine_));
  cache::MemoryManager* mm = st.memory_manager();
  EXPECT_DOUBLE_EQ(mm->dirty(), 60.0);        // only b remains dirty
  EXPECT_DOUBLE_EQ(mm->cached("a"), 100.0);   // a stays cached, now clean
}

TEST_F(StorageOpsTest, FsyncOnCleanFileIsFree) {
  storage::LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  st.stage_file("f", 50.0);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.read_file("f", 50.0);
    double t0 = e.now();
    co_await st.sync_file("f");
    EXPECT_DOUBLE_EQ(e.now() - t0, 0.0);
  };
  test::run_actor(engine_, body(engine_));
}

TEST_F(StorageOpsTest, FsyncMissingFileThrows) {
  storage::LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.sync_file("ghost");
    (void)e;
  };
  engine_.spawn("s", body(engine_));
  EXPECT_THROW(engine_.run(), storage::StorageError);
}

TEST_F(StorageOpsTest, InvalidateDropsCacheAfterWriteback) {
  storage::LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("f", 80.0, 40.0);
    co_await st.invalidate_file("f");
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  cache::MemoryManager* mm = st.memory_manager();
  EXPECT_DOUBLE_EQ(mm->cached("f"), 0.0);
  EXPECT_DOUBLE_EQ(mm->dirty(), 0.0);
  EXPECT_TRUE(st.fs().exists("f"));  // the file itself survives
  // Re-reading now pays disk again.
  auto reread = [&](sim::Engine& e) -> sim::Task<> {
    double t0 = e.now();
    co_await st.read_file("f", 80.0);
    EXPECT_DOUBLE_EQ(e.now() - t0, 8.0);
  };
  test::run_actor(engine_, reread(engine_));
}

TEST_F(StorageOpsTest, RemoveDiscardsDirtyDataWithoutWriteback) {
  storage::LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("tmp", 100.0, 50.0);
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  st.remove_file("tmp");
  EXPECT_FALSE(st.fs().exists("tmp"));
  EXPECT_DOUBLE_EQ(st.memory_manager()->cached(), 0.0);
  EXPECT_DOUBLE_EQ(st.memory_manager()->dirty(), 0.0);
  EXPECT_THROW(st.remove_file("tmp"), storage::StorageError);
}

TEST_F(StorageOpsTest, BackgroundRatioFlushingDrainsEarly) {
  // The B1 extension: with dirty_background_ratio enabled the flusher
  // starts writeback long before the 30 s expiry.
  cache::CacheParams params;
  params.dirty_expire = 1000.0;  // expiry effectively off
  params.flush_period = 2.0;
  params.dirty_background_ratio = 0.10;  // 100 B on this 1000 B host
  storage::LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback, params);
  st.start_periodic_flush();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("f", 180.0, 60.0);
    EXPECT_DOUBLE_EQ(st.memory_manager()->dirty(), 180.0);
    co_await e.sleep(30.0);
    // Background writeback took dirty down to the 100 B background limit
    // and keeps it there (expiry never fires in this test).
    EXPECT_LE(st.memory_manager()->dirty(), 100.0 + 1.0);
    EXPECT_GT(st.memory_manager()->dirty(), 0.0);
  };
  test::run_actor(engine_, body(engine_));
}

TEST_F(StorageOpsTest, BackgroundRatioZeroKeepsPaperBehaviour) {
  cache::CacheParams params;
  params.dirty_expire = 1000.0;
  params.flush_period = 2.0;
  params.dirty_background_ratio = 0.0;  // paper model
  storage::LocalStorage st(engine_, *host_, *disk_, cache::CacheMode::Writeback, params);
  st.start_periodic_flush();
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await st.write_file("f", 180.0, 60.0);
    co_await e.sleep(30.0);
    EXPECT_DOUBLE_EQ(st.memory_manager()->dirty(), 180.0);  // nothing flushed
  };
  test::run_actor(engine_, body(engine_));
}

TEST_F(StorageOpsTest, NfsRemoveInvalidatesBothCaches) {
  plat::Platform platform(engine_);
  plat::Host* client = platform.add_host(test::small_host("client", 1000.0, 100.0));
  plat::Host* server_host = platform.add_host(test::small_host("server", 1000.0, 100.0));
  plat::DiskSpec spec;
  spec.name = "exp";
  spec.read_bw = 10.0;
  spec.write_bw = 10.0;
  plat::Disk* sdisk = server_host->add_disk(engine_, spec);
  platform.add_link({"lan", 40.0, 0.0});
  platform.add_route("client", "server", {"lan"});

  storage::NfsServer server(engine_, *server_host, *sdisk, cache::CacheMode::Writethrough);
  storage::NfsMount mount(engine_, *client, server, platform.route_between("client", "server"),
                          cache::CacheMode::ReadCache);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mount.write_file("f", 100.0, 50.0);
    co_await mount.read_file("f", 50.0);  // populate client cache
    (void)e;
  };
  test::run_actor(engine_, body(engine_));
  EXPECT_GT(server.memory_manager()->cached("f"), 0.0);
  EXPECT_GT(mount.memory_manager()->cached("f"), 0.0);
  mount.remove_file("f");
  EXPECT_FALSE(server.fs().exists("f"));
  EXPECT_DOUBLE_EQ(server.memory_manager()->cached("f"), 0.0);
  EXPECT_DOUBLE_EQ(mount.memory_manager()->cached("f"), 0.0);
}

TEST_F(StorageOpsTest, NfsWritebackClientFsyncPushesToServer) {
  plat::Platform platform(engine_);
  plat::Host* client = platform.add_host(test::small_host("c", 1000.0, 100.0));
  plat::Host* server_host = platform.add_host(test::small_host("s", 1000.0, 100.0));
  plat::DiskSpec spec;
  spec.name = "exp";
  spec.read_bw = 10.0;
  spec.write_bw = 10.0;
  plat::Disk* sdisk = server_host->add_disk(engine_, spec);
  platform.add_link({"lan", 40.0, 0.0});
  platform.add_route("c", "s", {"lan"});

  storage::NfsServer server(engine_, *server_host, *sdisk, cache::CacheMode::Writethrough);
  storage::NfsMount mount(engine_, *client, server, platform.route_between("c", "s"),
                          cache::CacheMode::Writeback);
  auto body = [&](sim::Engine& e) -> sim::Task<> {
    co_await mount.write_file("f", 100.0, 50.0);  // lands in client cache
    EXPECT_DOUBLE_EQ(mount.memory_manager()->dirty(), 100.0);
    double t0 = e.now();
    co_await mount.sync_file("f");
    // 100 B over the composite link+disk flow at 10 B/s.
    EXPECT_DOUBLE_EQ(e.now() - t0, 10.0);
    EXPECT_DOUBLE_EQ(mount.memory_manager()->dirty(), 0.0);
  };
  test::run_actor(engine_, body(engine_));
}

}  // namespace
}  // namespace pcs
