// The sweep subsystem: expansion semantics (grid odometer order, labels,
// override paths), the thread-pool runner's determinism — results must be
// BYTE-identical for any --jobs value, each worker owning its private
// Engine — and per-case error capture.  Also the scenario-level batching
// A/B: "solve_batching" is an ordinary sweepable key, and flipping it must
// not change simulated results, only the solve count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/sweep.hpp"
#include "util/json.hpp"

#ifndef PCS_SOURCE_DIR
#define PCS_SOURCE_DIR "."
#endif

namespace pcs::scenario {
namespace {

constexpr const char* kSmallBase = R"json({
  "simulator": "wrench_cache",
  "platform": {
    "hosts": [
      {"name": "node0", "speed_gflops": 1, "cores": 4, "ram": "2 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [{"name": "ssd0", "read_bw_MBps": 510, "write_bw_MBps": 420,
                  "capacity": "100 GiB"}]}
    ]
  },
  "services": [{"name": "store", "type": "local", "cache": "writeback"}],
  "workload": {"type": "synthetic", "input_size": "200 MB", "instances": 1},
  "chunk_size": "50 MB"
})json";

util::Json small_base() { return util::Json::parse(kSmallBase); }

SweepSpec small_sweep() {
  util::Json doc{util::JsonObject{}};
  doc.set("name", "small");
  doc.set("base", small_base());
  util::Json axis1{util::JsonObject{}};
  axis1.set("path", "workload.instances");
  axis1.set("values", util::Json{util::JsonArray{}}.push_back(1).push_back(2));
  util::Json axis2{util::JsonObject{}};
  axis2.set("path", "solve_batching");
  axis2.set("values", util::Json{util::JsonArray{}}.push_back(true).push_back(false));
  doc.set("grid", util::Json{util::JsonArray{}}.push_back(std::move(axis1))
                      .push_back(std::move(axis2)));
  return SweepSpec::parse(doc);
}

TEST(SweepExpansion, GridIsRowMajorWithLastAxisFastest) {
  const std::vector<SweepCase> cases = small_sweep().expand();
  ASSERT_EQ(cases.size(), 4u);
  EXPECT_EQ(cases[0].label, "instances=1,solve_batching=true");
  EXPECT_EQ(cases[1].label, "instances=1,solve_batching=false");
  EXPECT_EQ(cases[2].label, "instances=2,solve_batching=true");
  EXPECT_EQ(cases[3].label, "instances=2,solve_batching=false");
  EXPECT_EQ(cases[2].doc.at("workload").at("instances").as_number(), 2.0);
  EXPECT_EQ(cases[3].doc.at("solve_batching").as_bool(), false);
  // The case identity lands in the scenario name.
  EXPECT_EQ(cases[0].doc.at("name").as_string(), "small:instances=1,solve_batching=true");
}

TEST(SweepExpansion, MultiKeyAxesAndExplicitCases) {
  util::Json doc{util::JsonObject{}};
  doc.set("base", small_base());
  util::Json axis{util::JsonObject{}};
  util::Json v0{util::JsonObject{}};
  v0.set("simulator", "wrench").set("services.0.cache", "none");
  util::Json v1{util::JsonObject{}};
  v1.set("simulator", "wrench_cache").set("services.0.cache", "writeback");
  axis.set("values", util::Json{util::JsonArray{}}.push_back(v0).push_back(v1));
  axis.set("labels", util::Json{util::JsonArray{}}.push_back("wrench").push_back("cache"));
  doc.set("grid", util::Json{util::JsonArray{}}.push_back(std::move(axis)));
  util::Json extra{util::JsonObject{}};
  extra.set("label", "tiny_chunk");
  extra.set("overrides", util::Json{util::JsonObject{}}.set("chunk_size", 1e6));
  doc.set("cases", util::Json{util::JsonArray{}}.push_back(std::move(extra)));

  const std::vector<SweepCase> cases = SweepSpec::parse(doc).expand();
  ASSERT_EQ(cases.size(), 3u);
  EXPECT_EQ(cases[0].label, "wrench");
  EXPECT_EQ(cases[0].doc.at("simulator").as_string(), "wrench");
  EXPECT_EQ(cases[0].doc.at("services").at(0).at("cache").as_string(), "none");
  EXPECT_EQ(cases[1].label, "cache");
  EXPECT_EQ(cases[2].label, "tiny_chunk");
  EXPECT_EQ(cases[2].doc.at("chunk_size").as_number(), 1e6);
}

TEST(SweepExpansion, OverridePathSemantics) {
  util::Json doc = small_base();
  // Deep set into an existing object.
  apply_override(doc, "workload.instances", util::Json(7));
  EXPECT_EQ(doc.at("workload").at("instances").as_number(), 7.0);
  // Array index.
  apply_override(doc, "services.0.cache", util::Json("none"));
  EXPECT_EQ(doc.at("services").at(0).at("cache").as_string(), "none");
  // Missing intermediate objects are created.
  apply_override(doc, "cache_params.dirty_ratio", util::Json(0.5));
  EXPECT_EQ(doc.at("cache_params").at("dirty_ratio").as_number(), 0.5);
  // Errors: bad array index, out-of-range index, descent into a scalar.
  EXPECT_THROW(apply_override(doc, "services.x.cache", util::Json(1)), ScenarioError);
  EXPECT_THROW(apply_override(doc, "services.5.cache", util::Json(1)), ScenarioError);
  EXPECT_THROW(apply_override(doc, "chunk_size.nested", util::Json(1)), ScenarioError);
  EXPECT_THROW(apply_override(doc, "", util::Json(1)), ScenarioError);
}

TEST(SweepExpansion, OverrideFailuresNameCaseAndAxis) {
  // A bad dotted path inside a grid must say which expanded case failed
  // (index + label), which axis supplied the path, and the path itself.
  util::Json doc{util::JsonObject{}};
  doc.set("name", "ladder");
  doc.set("base", small_base());
  util::Json good_axis{util::JsonObject{}};
  good_axis.set("path", "workload.instances");
  good_axis.set("values", util::Json{util::JsonArray{}}.push_back(1).push_back(2));
  util::Json bad_axis{util::JsonObject{}};
  bad_axis.set("path", "services.9.cache");  // out-of-range array index
  bad_axis.set("values", util::Json{util::JsonArray{}}.push_back("none"));
  doc.set("grid",
          util::Json{util::JsonArray{}}.push_back(good_axis).push_back(bad_axis));
  try {
    (void)SweepSpec::parse(doc).expand();
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sweep 'ladder'"), std::string::npos) << what;
    EXPECT_NE(what.find("case 0"), std::string::npos) << what;
    EXPECT_NE(what.find("instances=1"), std::string::npos) << what;       // case label
    EXPECT_NE(what.find("axis 1 ('services.9.cache')"), std::string::npos) << what;
    EXPECT_NE(what.find("services.9.cache"), std::string::npos) << what;  // full path
  }

  // Same for an explicit case: index and label, no axis.
  util::Json case_doc{util::JsonObject{}};
  doc.set("grid", util::Json{util::JsonArray{}});
  case_doc.set("label", "broken");
  case_doc.set("overrides",
               util::Json{util::JsonObject{}}.set("chunk_size.nested", 1));
  doc.set("cases", util::Json{util::JsonArray{}}.push_back(case_doc));
  try {
    (void)SweepSpec::parse(doc).expand();
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("case 0 'broken'"), std::string::npos) << what;
    EXPECT_NE(what.find("case override"), std::string::npos) << what;
    EXPECT_NE(what.find("chunk_size.nested"), std::string::npos) << what;
  }
}

TEST(SweepExpansion, DuplicateLabelsAreRejected) {
  util::Json doc{util::JsonObject{}};
  doc.set("base", small_base());
  util::Json case0{util::JsonObject{}};
  case0.set("label", "same");
  case0.set("overrides", util::Json{util::JsonObject{}}.set("chunk_size", 1e6));
  util::Json case1{util::JsonObject{}};
  case1.set("label", "same");
  case1.set("overrides", util::Json{util::JsonObject{}}.set("chunk_size", 2e6));
  doc.set("cases",
          util::Json{util::JsonArray{}}.push_back(std::move(case0)).push_back(std::move(case1)));
  EXPECT_THROW(SweepSpec::parse(doc).expand(), ScenarioError);
}

// The acceptance property: the serialized report is byte-identical for
// --jobs 1, 4 and 8.  Every simulated quantity (makespans, task counts,
// engine counters) must be independent of worker scheduling; wall-clock is
// deliberately excluded from reports.
TEST(SweepRunner, ReportsAreByteIdenticalAcrossJobCounts) {
  const SweepSpec spec = small_sweep();
  const std::string reference =
      sweep_report_json(spec, run_sweep(spec, {.jobs = 1})).dump(2);
  for (int jobs : {4, 8}) {
    const std::string report =
        sweep_report_json(spec, run_sweep(spec, {.jobs = jobs})).dump(2);
    EXPECT_EQ(reference, report) << "jobs=" << jobs;
  }
  const std::string csv_reference = sweep_report_csv(run_sweep(spec, {.jobs = 1}));
  EXPECT_EQ(csv_reference, sweep_report_csv(run_sweep(spec, {.jobs = 8})));
}

// Scenario-level batching A/B, via the sweep itself: flipping
// solve_batching changes the solve count and nothing else.
TEST(SweepRunner, SolveBatchingAblationIsBitIdentical) {
  const std::vector<SweepCaseResult> results = run_sweep(small_sweep(), {.jobs = 2});
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); i += 2) {
    const SweepCaseResult& batched = results[i];
    const SweepCaseResult& per_event = results[i + 1];
    ASSERT_TRUE(batched.error.empty()) << batched.error;
    ASSERT_TRUE(per_event.error.empty()) << per_event.error;
    EXPECT_EQ(batched.result.makespan, per_event.result.makespan);  // bitwise
    EXPECT_EQ(batched.result.scheduling_points, per_event.result.scheduling_points);
    ASSERT_EQ(batched.result.tasks.size(), per_event.result.tasks.size());
    for (std::size_t t = 0; t < batched.result.tasks.size(); ++t) {
      EXPECT_EQ(batched.result.tasks[t].end, per_event.result.tasks[t].end);
    }
    EXPECT_LT(batched.result.fair_share_solves, per_event.result.fair_share_solves);
  }
}

// Scenario-level parallel-solver A/B, same shape as the batching ablation:
// "solver_threads" is an ordinary sweepable key, and any width must leave
// every simulated quantity bitwise unchanged — the pool only affects host
// wall-clock.
TEST(SweepRunner, SolverThreadsAblationIsBitIdentical) {
  util::Json doc{util::JsonObject{}};
  doc.set("name", "threads_ab");
  doc.set("base", small_base());
  util::Json axis{util::JsonObject{}};
  axis.set("path", "solver_threads");
  axis.set("values",
           util::Json{util::JsonArray{}}.push_back(1).push_back(2).push_back(8).push_back(0));
  doc.set("grid", util::Json{util::JsonArray{}}.push_back(std::move(axis)));

  const std::vector<SweepCaseResult> results = run_sweep(SweepSpec::parse(doc), {.jobs = 2});
  ASSERT_EQ(results.size(), 4u);
  const SweepCaseResult& serial = results[0];
  ASSERT_TRUE(serial.error.empty()) << serial.error;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const SweepCaseResult& parallel = results[i];
    ASSERT_TRUE(parallel.error.empty()) << parallel.error;
    EXPECT_EQ(serial.result.makespan, parallel.result.makespan) << parallel.label;  // bitwise
    EXPECT_EQ(serial.result.scheduling_points, parallel.result.scheduling_points)
        << parallel.label;
    EXPECT_EQ(serial.result.fair_share_solves, parallel.result.fair_share_solves)
        << parallel.label;
    EXPECT_EQ(serial.result.components_solved, parallel.result.components_solved)
        << parallel.label;
    ASSERT_EQ(serial.result.tasks.size(), parallel.result.tasks.size());
    for (std::size_t t = 0; t < serial.result.tasks.size(); ++t) {
      EXPECT_EQ(serial.result.tasks[t].end, parallel.result.tasks[t].end) << parallel.label;
    }
  }
}

TEST(SweepRunner, CaseErrorsAreCapturedNotFatal) {
  util::Json doc{util::JsonObject{}};
  doc.set("base", small_base());
  util::Json good{util::JsonObject{}};
  good.set("label", "good");
  good.set("overrides", util::Json{util::JsonObject{}}.set("workload.instances", 1));
  util::Json bad{util::JsonObject{}};
  bad.set("label", "bad");
  bad.set("overrides", util::Json{util::JsonObject{}}.set("simulator", "no_such_simulator"));
  doc.set("cases",
          util::Json{util::JsonArray{}}.push_back(std::move(good)).push_back(std::move(bad)));

  const std::vector<SweepCaseResult> results = run_sweep(SweepSpec::parse(doc), {.jobs = 4});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].error.empty());
  EXPECT_GT(results[0].result.makespan, 0.0);
  EXPECT_FALSE(results[1].error.empty());
  EXPECT_NE(results[1].error.find("no_such_simulator"), std::string::npos);
}

// The committed Fig 8 ladder parses, expands to the full grid, and keeps
// its platform reference resolvable from the sweep file's directory.
TEST(SweepFiles, Fig8ScalingExpands) {
  const SweepSpec spec =
      SweepSpec::from_file(PCS_SOURCE_DIR "/scenarios/sweeps/fig8_scaling.json");
  EXPECT_EQ(spec.name, "fig8_scaling");
  const std::vector<SweepCase> cases = spec.expand();
  ASSERT_EQ(cases.size(), 18u);
  EXPECT_EQ(cases.front().label, "wrench,instances=1");
  EXPECT_EQ(cases.back().label, "wrench_cache,instances=32");
  // Every case must at least parse into a ScenarioSpec.
  for (const SweepCase& c : cases) {
    EXPECT_NO_THROW(ScenarioSpec::parse(c.doc, spec.base_dir)) << c.label;
  }
}

}  // namespace
}  // namespace pcs::scenario
