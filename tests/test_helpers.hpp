// Shared fixtures for the test suite: a minimal platform, an instrumented
// backing store, and a helper to run a single coroutine to completion.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "pagecache/backing_store.hpp"
#include "platform/platform.hpp"
#include "simcore/engine.hpp"
#include "simcore/task.hpp"

namespace pcs::test {

/// Backing store with configurable device bandwidths that records every
/// transfer it was asked to perform.
class FakeStore : public cache::BackingStore {
 public:
  FakeStore(sim::Engine& engine, double read_bw, double write_bw)
      : engine_(engine),
        read_channel_(engine.new_resource("fake:rd", read_bw)),
        write_channel_(engine.new_resource("fake:wr", write_bw)) {}

  sim::Task<> read(const std::string& file, double bytes) override {
    reads.emplace_back(file, bytes);
    co_await engine_.submit("fake-read", sim::one(read_channel_), bytes);
  }

  sim::Task<> write(const std::string& file, double bytes) override {
    writes.emplace_back(file, bytes);
    co_await engine_.submit("fake-write", sim::one(write_channel_), bytes);
  }

  [[nodiscard]] double total_read() const {
    double sum = 0.0;
    for (const auto& [f, b] : reads) sum += b;
    return sum;
  }
  [[nodiscard]] double total_written() const {
    double sum = 0.0;
    for (const auto& [f, b] : writes) sum += b;
    return sum;
  }
  [[nodiscard]] double written_of(const std::string& file) const {
    double sum = 0.0;
    for (const auto& [f, b] : writes) {
      if (f == file) sum += b;
    }
    return sum;
  }

  std::vector<std::pair<std::string, double>> reads;
  std::vector<std::pair<std::string, double>> writes;

 private:
  sim::Engine& engine_;
  sim::Resource* read_channel_;
  sim::Resource* write_channel_;
};

/// Spawn `body` as the only actor and run the engine to completion.
inline void run_actor(sim::Engine& engine, sim::Task<> body) {
  engine.spawn("test-actor", std::move(body));
  engine.run();
}

/// A small host: 1 Gflops, 4 cores, `ram` bytes, memory channels at
/// mem_bw both ways.
inline plat::HostSpec small_host(const std::string& name, double ram, double mem_bw) {
  plat::HostSpec spec;
  spec.name = name;
  spec.speed = 1e9;
  spec.cores = 4;
  spec.ram = ram;
  spec.mem_read_bw = mem_bw;
  spec.mem_write_bw = mem_bw;
  return spec;
}

}  // namespace pcs::test
