// The tiered SSD+HDD backend: creation-time watermark placement, raw
// transfers routed to each file's home device, registry integration and
// the committed scenario's spill behaviour.
#include <gtest/gtest.h>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "storage/service_registry.hpp"
#include "storage/tiered.hpp"
#include "util/units.hpp"
#include "workflow/simulation.hpp"

namespace pcs::storage {
namespace {

using util::GB;

util::Json obj() { return util::Json{util::JsonObject{}}; }

util::Json two_disk_platform(const std::string& fast_capacity = "10 GB") {
  return util::Json::parse(R"json({
    "hosts": [
      {"name": "node0", "speed_gflops": 1, "cores": 8, "ram": "32 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [
         {"name": "ssd0", "read_bw_MBps": 510, "write_bw_MBps": 420,
          "capacity": ")json" +
                          fast_capacity + R"json("},
         {"name": "hdd0", "read_bw_MBps": 150, "write_bw_MBps": 130,
          "capacity": "4 TB"}
       ]}
    ]
  })json");
}

TieredStorage* build_tiered(wf::Simulation& sim, double watermark) {
  sim.platform().load_json(two_disk_platform());
  ServiceContext ctx{sim, {}};
  util::Json spec = obj()
                        .set("type", "tiered")
                        .set("host", "node0")
                        .set("fast_disk", "ssd0")
                        .set("slow_disk", "hdd0")
                        .set("watermark", watermark);
  return static_cast<TieredStorage*>(
      ServiceRegistry::instance().build("tiered", ctx, spec));
}

TEST(TieredStorage, RegistryKnowsTheBackend) {
  EXPECT_TRUE(ServiceRegistry::instance().has("tiered"));
}

TEST(TieredStorage, PlacementSpillsAtTheWatermark) {
  wf::Simulation sim;
  TieredStorage* st = build_tiered(sim, 0.5);  // watermark at 5 GB
  st->stage_file("hot1", 2.0 * GB);
  st->stage_file("hot2", 2.0 * GB);
  EXPECT_TRUE(st->on_fast_tier("hot1"));
  EXPECT_TRUE(st->on_fast_tier("hot2"));
  EXPECT_EQ(st->fast_used(), 4.0 * GB);
  // 4 + 2 > 5 GB: the next file spills, even though the SSD itself has room.
  st->stage_file("cold1", 2.0 * GB);
  EXPECT_FALSE(st->on_fast_tier("cold1"));
  // Small files still fit under the watermark afterwards.
  st->stage_file("hot3", 0.5 * GB);
  EXPECT_TRUE(st->on_fast_tier("hot3"));
  EXPECT_EQ(st->fast_file_count(), 3u);
  EXPECT_EQ(st->slow_file_count(), 1u);
  EXPECT_THROW((void)st->on_fast_tier("ghost"), StorageError);
}

TEST(TieredStorage, SlowTierReadsPayTheSlowDevice) {
  auto read_time = [](bool spill) {
    wf::Simulation sim;
    // Watermark 1.0 with a 10 GB SSD: an 8 GB file fits; with 0.5 it spills.
    TieredStorage* st = build_tiered(sim, spill ? 0.5 : 1.0);
    st->stage_file("data", 8.0 * GB);
    double start = 0.0, end = 0.0;
    sim.engine().spawn("reader", [](wf::Simulation& s, TieredStorage* t, double* a,
                                    double* b) -> sim::Task<> {
      *a = s.engine().now();
      co_await t->read_file("data", 100.0e6);
      *b = s.engine().now();
    }(sim, st, &start, &end));
    sim.run();
    return end - start;
  };
  const double fast = read_time(false);
  const double slow = read_time(true);
  EXPECT_GT(slow, fast);
  // Cold 8 GB at 510 vs 150 MBps: the device gap must show through the
  // (identical) cache behaviour.
  EXPECT_GT(slow / fast, 2.0);
}

TEST(TieredStorage, FastTierGrowBeyondDeviceCapacityThrows) {
  wf::Simulation sim;
  TieredStorage* st = build_tiered(sim, 1.0);  // 10 GB fast device
  st->stage_file("data", 8.0 * GB);
  ASSERT_TRUE(st->on_fast_tier("data"));
  // Rewriting it at 12 GB would put more bytes on the SSD than it holds.
  sim.engine().spawn("grower", [](TieredStorage* t) -> sim::Task<> {
    co_await t->write_file("data", 12.0 * GB, 100.0e6);
  }(st));
  EXPECT_THROW(sim.run(), StorageError);
}

TEST(TieredStorage, ConstructionRejectsBadSpecs) {
  {
    wf::Simulation sim;
    sim.platform().load_json(two_disk_platform());
    ServiceContext ctx{sim, {}};
    EXPECT_THROW(ServiceRegistry::instance().build(
                     "tiered", ctx,
                     obj().set("type", "tiered").set("host", "node0").set("watermark", 1.5)),
                 StorageError);
    EXPECT_THROW(
        ServiceRegistry::instance().build("tiered", ctx,
                                          obj()
                                              .set("type", "tiered")
                                              .set("host", "node0")
                                              .set("fast_disk", "ssd0")
                                              .set("slow_disk", "ssd0")),
        StorageError);
  }
  {
    // A fast tier without a declared capacity can never spill: rejected.
    wf::Simulation sim;
    sim.platform().load_json(util::Json::parse(R"json({
      "hosts": [{"name": "node0", "speed_gflops": 1, "cores": 1, "ram": "8 GB",
                 "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
                 "disks": [{"name": "d0", "read_bw_MBps": 500, "write_bw_MBps": 400},
                           {"name": "d1", "read_bw_MBps": 100, "write_bw_MBps": 100}]}]
    })json"));
    ServiceContext ctx{sim, {}};
    EXPECT_THROW(ServiceRegistry::instance().build(
                     "tiered", ctx, obj().set("type", "tiered").set("host", "node0")),
                 StorageError);
  }
}

TEST(TieredStorage, ScenarioSpillIsSlowerThanAnUnspilledRun) {
  auto makespan = [](const std::string& fast_capacity) {
    util::Json doc = obj();
    doc.set("platform", two_disk_platform(fast_capacity));
    util::Json svcs{util::JsonArray{}};
    svcs.push_back(obj()
                       .set("name", "store")
                       .set("type", "tiered")
                       .set("fast_disk", "ssd0")
                       .set("slow_disk", "hdd0")
                       .set("watermark", 0.9));
    doc.set("services", std::move(svcs));
    // 3×10 GB pipelines write 90 GB of files: a 40 GB SSD spills most of
    // it, a 400 GB SSD absorbs everything.
    doc.set("workload",
            obj().set("type", "synthetic").set("input_size", "10 GB").set("instances", 3));
    return scenario::run_scenario(scenario::ScenarioSpec::parse(doc)).makespan;
  };
  EXPECT_GT(makespan("40 GB"), makespan("400 GB"));
}

}  // namespace
}  // namespace pcs::storage
