// The record→replay closed loop (tracelog/ + the "trace" workload
// generator): recording a run is pure observation, replaying its task log
// on the same platform reproduces the makespan and every per-task phase
// boundary bit-for-bit, and the trace knobs (load_factor, time_scale,
// start/end windowing, remap) open scenario families from one log —
// including through the sweep subsystem.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "tracelog/anonymize.hpp"
#include "tracelog/recorder.hpp"
#include "tracelog/task_log.hpp"
#include "tracelog/task_log_reader.hpp"
#include "workload/workload.hpp"

#ifndef PCS_SOURCE_DIR
#define PCS_SOURCE_DIR "."
#endif

namespace pcs::scenario {
namespace {

util::Json obj() { return util::Json{util::JsonObject{}}; }

util::Json node_platform() {
  return util::Json::parse(R"json({
    "hosts": [
      {"name": "node0", "speed_gflops": 1, "cores": 8, "ram": "32 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [{"name": "ssd0", "read_bw_MBps": 510, "write_bw_MBps": 420}]}
    ]
  })json");
}

/// A multi-tenant scenario with everything replay has to get right:
/// staggered delayed arrivals, two storage services with different cache
/// params, and heterogeneous workflows.
util::Json multi_tenant_doc() {
  util::Json doc = obj();
  doc.set("name", "mt");
  doc.set("platform", node_platform());
  util::Json svcs{util::JsonArray{}};
  svcs.push_back(obj().set("name", "batch_store").set("type", "local"));
  svcs.push_back(obj()
                     .set("name", "qos_store")
                     .set("type", "local")
                     .set("params", obj().set("dirty_ratio", 0.02)));
  doc.set("services", std::move(svcs));
  doc.set("default_service", "batch_store");
  util::Json tenants{util::JsonArray{}};
  tenants.push_back(obj()
                        .set("name", "batch")
                        .set("type", "synthetic")
                        .set("input_size", "2 GB")
                        .set("instances", 2)
                        .set("stagger", 40.0)
                        .set("service", "batch_store"));
  tenants.push_back(obj()
                        .set("name", "interactive")
                        .set("type", "nighres")
                        .set("arrival", 15.0)
                        .set("service", "qos_store"));
  doc.set("workload", obj().set("type", "multi_tenant").set("tenants", std::move(tenants)));
  return doc;
}

util::Json nighres_doc() {
  util::Json doc = obj();
  doc.set("name", "nighres");
  doc.set("platform", node_platform());
  doc.set("workload", obj().set("type", "nighres").set("instances", 2).set("stagger", 30.0));
  doc.set("chunk_size", "50 MB");
  return doc;
}

/// Unique-ish temp path under the system temp dir (tests may run
/// concurrently from several suites, but not within one binary).
std::string temp_log_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() / ("pcs_trace_" + tag + ".jsonl")).string();
}

void expect_bit_identical(const RunResult& replayed, const RunResult& original) {
  EXPECT_EQ(replayed.makespan, original.makespan);
  ASSERT_EQ(replayed.tasks.size(), original.tasks.size());
  for (const wf::TaskResult& want : original.tasks) {
    const wf::TaskResult& got = replayed.task(want.name);
    EXPECT_EQ(got.start, want.start) << want.name;
    EXPECT_EQ(got.read_start, want.read_start) << want.name;
    EXPECT_EQ(got.read_end, want.read_end) << want.name;
    EXPECT_EQ(got.compute_end, want.compute_end) << want.name;
    EXPECT_EQ(got.write_end, want.write_end) << want.name;
    EXPECT_EQ(got.end, want.end) << want.name;
  }
}

/// Record `doc`, round-trip the log through JSONL on disk, and return the
/// replay scenario (same platform/services, workload swapped for the
/// trace) plus the original's result.
struct ClosedLoop {
  RunResult original;
  tracelog::TaskLog log;
  util::Json replay_doc;
  std::string log_path;
};

ClosedLoop record_to_file(const util::Json& doc, const std::string& tag) {
  ClosedLoop loop;
  ScenarioSpec spec = ScenarioSpec::parse(doc);
  loop.log_path = temp_log_path(tag);
  std::ofstream out(loop.log_path);
  tracelog::TaskLogRecorder recorder(&out, /*keep_in_memory=*/true);
  RunOptions options;
  options.recorder = &recorder;
  loop.original = run_scenario(spec, options);
  out.close();
  loop.log = tracelog::TaskLog::from_file(loop.log_path);
  loop.log.validate();
  // The header embeds the effective spec; swapping its workload for the
  // trace is exactly what `pcs_cli replay` does.
  loop.replay_doc = loop.log.source_scenario;
  loop.replay_doc.set("workload", obj().set("type", "trace").set("file", loop.log_path));
  return loop;
}

TEST(TraceReplay, NighresClosedLoopIsBitIdentical) {
  ClosedLoop loop = record_to_file(nighres_doc(), "nighres");
  EXPECT_EQ(loop.log.task_count(), 8u);
  EXPECT_EQ(loop.log.workflows.size(), 2u);
  RunResult replayed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(replayed, loop.original);
  EXPECT_EQ(loop.log.recorded_makespan, loop.original.makespan);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, MultiTenantClosedLoopIsBitIdentical) {
  ClosedLoop loop = record_to_file(multi_tenant_doc(), "mt");
  EXPECT_EQ(loop.log.workflows.size(), 3u);
  // Delayed arrivals recorded at their actual submission instants.
  bool saw_delayed = false;
  for (const tracelog::TraceWorkflow& wf : loop.log.workflows) {
    if (wf.label == "batch:a1") {
      EXPECT_EQ(wf.submit, 40.0);
      EXPECT_EQ(wf.service, "batch_store");
      saw_delayed = true;
    }
  }
  EXPECT_TRUE(saw_delayed);
  RunResult replayed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(replayed, loop.original);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, RecordingIsPureObservation) {
  ScenarioSpec spec = ScenarioSpec::parse(multi_tenant_doc());
  RunResult plain = run_scenario(spec);
  tracelog::TaskLogRecorder recorder(nullptr, true);
  RunOptions options;
  options.recorder = &recorder;
  RunResult recorded = run_scenario(spec, options);
  expect_bit_identical(recorded, plain);
  EXPECT_EQ(recorded.fair_share_solves, plain.fair_share_solves);
  EXPECT_EQ(recorded.scheduling_points, plain.scheduling_points);
}

TEST(TraceReplay, LoadFactorClonesTheWholeLog) {
  ClosedLoop loop = record_to_file(nighres_doc(), "load");
  loop.replay_doc.set("workload", obj()
                                      .set("type", "trace")
                                      .set("file", loop.log_path)
                                      .set("load_factor", 2)
                                      .set("stagger", 10.0));
  RunResult doubled = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  EXPECT_EQ(doubled.tasks.size(), 2 * loop.original.tasks.size());
  // Clones are namespaced and staggered, never colliding with each other.
  EXPECT_NO_THROW((void)doubled.task("c0:a0:skull_stripping"));
  EXPECT_NO_THROW((void)doubled.task("c1:a1:skull_stripping"));
  EXPECT_GE(doubled.task("c1:a0:skull_stripping").start, 10.0);
  EXPECT_GE(doubled.makespan, loop.original.makespan);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, TimeScaleStretchesArrivals) {
  ClosedLoop loop = record_to_file(nighres_doc(), "scale");
  loop.replay_doc.set("workload", obj()
                                      .set("type", "trace")
                                      .set("file", loop.log_path)
                                      .set("time_scale", 3.0));
  RunResult stretched = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  // The second instance arrived at 30 s in the recording; ×3 pushes its
  // submission (and hence first task start) to at least 90 s.
  EXPECT_GE(stretched.task("a1:skull_stripping").start, 90.0);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, WindowSelectsSubmitTimeRange) {
  ClosedLoop loop = record_to_file(nighres_doc(), "window");
  // Only the delayed instance (submit 30 s) is inside [10, 100); its
  // arrival is rebased to 20 s.
  loop.replay_doc.set("workload", obj()
                                      .set("type", "trace")
                                      .set("file", loop.log_path)
                                      .set("start", 10.0)
                                      .set("end", 100.0));
  RunResult windowed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  EXPECT_EQ(windowed.tasks.size(), 4u);
  EXPECT_GE(windowed.task("a1:skull_stripping").start, 20.0);
  EXPECT_THROW((void)windowed.task("a0:skull_stripping"), std::runtime_error);

  // An empty window is a spec error, not a silent no-op run.
  loop.replay_doc.set("workload", obj()
                                      .set("type", "trace")
                                      .set("file", loop.log_path)
                                      .set("start", 500.0)
                                      .set("end", 600.0));
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(loop.replay_doc)),
               workload::WorkloadError);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, RemapRebindsRecordedServices) {
  ClosedLoop loop = record_to_file(multi_tenant_doc(), "remap");
  // Collapse the qos tenant onto the batch store; batch stays put.
  loop.replay_doc.set("workload",
                      obj()
                          .set("type", "trace")
                          .set("file", loop.log_path)
                          .set("remap", obj().set("qos_store", "batch_store")));
  RunResult remapped = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  EXPECT_EQ(remapped.tasks.size(), loop.original.tasks.size());
  // Without the qos store's aggressive flushing, the interactive tenant's
  // writes are absorbed by the default cache parameters.
  EXPECT_LE(remapped.task("interactive:a0:tissue_classification").write_time(),
            loop.original.task("interactive:a0:tissue_classification").write_time());
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, SweepDrivesTraceKnobsAsAxes) {
  ClosedLoop loop = record_to_file(nighres_doc(), "sweep");
  SweepSpec sweep;
  sweep.name = "trace_knobs";
  sweep.base = loop.replay_doc;
  SweepSpec::Axis load_axis;
  load_axis.path = "workload.load_factor";
  load_axis.values = {util::Json(1), util::Json(2)};
  SweepSpec::Axis scale_axis;
  scale_axis.path = "workload.time_scale";
  scale_axis.values = {util::Json(1.0), util::Json(0.5)};
  sweep.grid = {load_axis, scale_axis};

  std::vector<SweepCaseResult> results = run_sweep(sweep, {});
  ASSERT_EQ(results.size(), 4u);
  for (const SweepCaseResult& r : results) {
    EXPECT_TRUE(r.error.empty()) << r.label << ": " << r.error;
    EXPECT_GT(r.result.makespan, 0.0) << r.label;
  }
  // The identity case of the sweep is still the bit-exact replay.
  EXPECT_EQ(results[0].result.makespan, loop.original.makespan);
  EXPECT_EQ(results[2].result.tasks.size(), 2 * loop.original.tasks.size());
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, CommittedTraceScenarioMatchesItsSource) {
  // The committed example log must stay in sync with the nighres scenario
  // it was recorded from: replaying it reproduces the same makespan.
  RunResult source =
      run_scenario_file(PCS_SOURCE_DIR "/scenarios/nighres.json");
  RunResult replayed =
      run_scenario_file(PCS_SOURCE_DIR "/scenarios/trace_replay.json");
  expect_bit_identical(replayed, source);
}

TEST(TraceReplay, JsonlRoundTripPreservesTheLog) {
  ClosedLoop loop = record_to_file(multi_tenant_doc(), "roundtrip");
  std::ostringstream rewritten;
  loop.log.save(rewritten);
  tracelog::TaskLog again = tracelog::TaskLog::parse_text(rewritten.str());
  again.validate();
  EXPECT_TRUE(again.to_json() == loop.log.to_json());
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, ParserAndValidatorRejectMalformedLogs) {
  using tracelog::TaskLog;
  using tracelog::TraceError;
  // No header.
  EXPECT_THROW(TaskLog::parse_text("{\"rec\":\"summary\",\"makespan\":1,\"tasks\":0}\n"),
               TraceError);
  // Task referencing an unknown workflow id.
  EXPECT_THROW(
      TaskLog::parse_text("{\"rec\":\"header\",\"version\":1}\n"
                          "{\"rec\":\"task\",\"wf\":7,\"name\":\"t\",\"flops\":1}\n"),
      TraceError);
  // Unknown record type and malformed JSON carry the line number.
  try {
    (void)TaskLog::parse_text("{\"rec\":\"header\",\"version\":1}\n{\"rec\":\"blob\"}\n");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }

  // Unsupported version is a validate()-time error.
  TaskLog future = TaskLog::parse_text("{\"rec\":\"header\",\"version\":99}\n");
  EXPECT_THROW(future.validate(), TraceError);

  // Duplicate task names across workflows.
  TaskLog dup = TaskLog::parse_text(
      "{\"rec\":\"header\",\"version\":1}\n"
      "{\"rec\":\"workflow\",\"id\":0,\"label\":\"a\",\"service\":\"\",\"submit\":0}\n"
      "{\"rec\":\"task\",\"wf\":0,\"name\":\"t\",\"flops\":1}\n"
      "{\"rec\":\"task\",\"wf\":0,\"name\":\"t\",\"flops\":1}\n");
  EXPECT_THROW(dup.validate(), TraceError);

  // Dependency on a task outside the workflow.
  TaskLog dep = TaskLog::parse_text(
      "{\"rec\":\"header\",\"version\":1}\n"
      "{\"rec\":\"workflow\",\"id\":0,\"label\":\"a\",\"service\":\"\",\"submit\":0}\n"
      "{\"rec\":\"task\",\"wf\":0,\"name\":\"t\",\"flops\":1,\"deps\":[\"ghost\"]}\n");
  EXPECT_THROW(dep.validate(), TraceError);
}

// --- Schema v2: disruptions and task attempts ------------------------------

/// A crash-and-retry scenario: one long task killed mid-flight at t = 50,
/// host restarts at 60, second attempt succeeds.
util::Json crash_doc() {
  util::Json doc = obj();
  doc.set("name", "crashy");
  doc.set("platform", node_platform());
  doc.set("workload", util::Json::parse(R"json({
    "type": "dag", "instances": 1,
    "workflow": {"tasks": [{"name": "slow", "cpu_seconds": 100}]}
  })json"));
  doc.set("retry", util::Json::parse(R"json({"max_attempts": 2, "backoff": 0})json"));
  doc.set("events", util::Json::parse(R"json([
    {"type": "host_crash", "time": 50, "host": "node0", "restart_at": 60}
  ])json"));
  return doc;
}

TEST(TraceReplay, FaultyRunRecordsV2AndReplaysBitIdentical) {
  ClosedLoop loop = record_to_file(crash_doc(), "crashy");
  // The log is schema v2: the crash and restart are disruption records, the
  // killed first attempt a task_attempt record, and the completed task
  // carries its attempt count.
  EXPECT_EQ(loop.log.version, 2);
  ASSERT_EQ(loop.log.disruptions.size(), 2u);
  EXPECT_EQ(loop.log.disruptions[0].type, "host_crash");
  EXPECT_DOUBLE_EQ(loop.log.disruptions[0].time, 50.0);
  EXPECT_EQ(loop.log.disruptions[1].type, "host_restart");
  ASSERT_EQ(loop.log.task_attempts.size(), 1u);
  EXPECT_EQ(loop.log.task_attempts[0].name, "slow");
  EXPECT_EQ(loop.log.task_attempts[0].attempt, 1);
  EXPECT_EQ(loop.log.task_attempts[0].outcome, "crashed");
  ASSERT_EQ(loop.log.task_events.size(), 1u);
  EXPECT_EQ(loop.log.task_events[0].attempts, 2);
  // The closed loop holds under failure: the header's scenario re-fires the
  // same events on replay, so the replayed timeline is bit-identical.
  const RunResult replayed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(replayed, loop.original);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, VersionOneLogsStillParseAndResaveAsVersionOne) {
  // Logs recorded before the fault-injection schema keep parsing, validate
  // clean, and re-save with their original version header — so committed
  // v1 artifacts stay byte-stable.
  tracelog::TaskLog v1 = tracelog::TaskLog::parse_text(
      "{\"rec\":\"header\",\"version\":1}\n"
      "{\"rec\":\"workflow\",\"id\":0,\"label\":\"a\",\"service\":\"\",\"submit\":0}\n"
      "{\"rec\":\"task\",\"wf\":0,\"name\":\"t\",\"flops\":1}\n");
  v1.validate();
  EXPECT_EQ(v1.version, 1);
  std::ostringstream resaved;
  v1.save(resaved);
  EXPECT_NE(resaved.str().find("\"version\":1"), std::string::npos);
  EXPECT_EQ(resaved.str().find("\"version\":2"), std::string::npos);

  const std::string committed =
      std::string(PCS_SOURCE_DIR) + "/scenarios/traces/nighres_run.jsonl";
  tracelog::TaskLog log = tracelog::TaskLog::from_file(committed);
  log.validate();
  EXPECT_EQ(log.version, 1);
  EXPECT_TRUE(log.disruptions.empty());
  EXPECT_TRUE(log.task_attempts.empty());
  // Resaving a v1 log must not promote it: parse(save(log)) is the same
  // log, still version 1, with no v2 sections materializing.
  std::ostringstream bytes;
  log.save(bytes);
  tracelog::TaskLog again = tracelog::TaskLog::parse_text(bytes.str());
  EXPECT_EQ(again.version, 1);
  EXPECT_TRUE(again.to_json() == log.to_json());
}

TEST(TraceReplay, ValidatorRejectsMalformedV2Records) {
  using tracelog::TaskLog;
  using tracelog::TraceError;
  const std::string prologue =
      "{\"rec\":\"header\",\"version\":2}\n"
      "{\"rec\":\"workflow\",\"id\":0,\"label\":\"a\",\"service\":\"\",\"submit\":0}\n"
      "{\"rec\":\"task\",\"wf\":0,\"name\":\"t\",\"flops\":1}\n";
  // An attempt for a task the log never declared.
  TaskLog ghost = TaskLog::parse_text(
      prologue +
      "{\"rec\":\"task_attempt\",\"name\":\"ghost\",\"host\":\"h\",\"attempt\":1,"
      "\"start\":0,\"end\":1,\"outcome\":\"crashed\"}\n");
  EXPECT_THROW(ghost.validate(), TraceError);
  // Attempt numbers are 1-based; attempt windows cannot run backwards.
  TaskLog zero = TaskLog::parse_text(
      prologue +
      "{\"rec\":\"task_attempt\",\"name\":\"t\",\"host\":\"h\",\"attempt\":0,"
      "\"start\":0,\"end\":1,\"outcome\":\"crashed\"}\n");
  EXPECT_THROW(zero.validate(), TraceError);
  TaskLog backwards = TaskLog::parse_text(
      prologue +
      "{\"rec\":\"task_attempt\",\"name\":\"t\",\"host\":\"h\",\"attempt\":1,"
      "\"start\":5,\"end\":1,\"outcome\":\"crashed\"}\n");
  EXPECT_THROW(backwards.validate(), TraceError);
  // Disruptions need a type and a non-negative time.
  TaskLog untyped =
      TaskLog::parse_text(prologue + "{\"rec\":\"disruption\",\"type\":\"\",\"time\":1}\n");
  EXPECT_THROW(untyped.validate(), TraceError);
  TaskLog early = TaskLog::parse_text(
      prologue + "{\"rec\":\"disruption\",\"type\":\"host_crash\",\"time\":-1}\n");
  EXPECT_THROW(early.validate(), TraceError);
  // And the well-formed variants pass.
  TaskLog good = TaskLog::parse_text(
      prologue +
      "{\"rec\":\"disruption\",\"type\":\"host_crash\",\"time\":1,\"target\":\"h\"}\n"
      "{\"rec\":\"task_attempt\",\"name\":\"t\",\"host\":\"h\",\"attempt\":1,"
      "\"start\":0,\"end\":1,\"outcome\":\"crashed\"}\n");
  EXPECT_NO_THROW(good.validate());
}

TEST(TraceReplay, BackgroundFlushTrafficIsRecordedAsServiceIo) {
  // A write-heavy cached pipeline: the page-cache flusher must appear in
  // the log as service-attributed "flush" io records with no issuing task —
  // and observing it must not change the simulation (the closed loop stays
  // bit-identical).
  util::Json doc = obj();
  doc.set("name", "flushy");
  doc.set("platform", node_platform());
  doc.set("workload",
          obj().set("type", "synthetic").set("input_size", "8 GB").set("instances", 1));
  ClosedLoop loop = record_to_file(doc, "flush");

  std::size_t flush_records = 0;
  for (const tracelog::TraceIoEvent& event : loop.log.io_events) {
    if (event.op != "flush") continue;
    ++flush_records;
    EXPECT_EQ(event.service, "store");
    EXPECT_TRUE(event.task.empty()) << "flush traffic is service-attributed, not task-issued";
    EXPECT_GT(event.bytes, 0.0);
    EXPECT_GE(event.end, event.start);
  }
  // 8 GB of dirty data against a 32 GB node (dirty_ratio 20% = 6.4 GB)
  // forces demand flushing during the writes.
  EXPECT_GT(flush_records, 0u);

  RunResult replayed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(replayed, loop.original);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, BurstBufferDrainTrafficIsRecordedAsServiceIo) {
  ScenarioSpec spec = ScenarioSpec::from_file(std::string(PCS_SOURCE_DIR) +
                                              "/scenarios/burst_buffer.json");
  tracelog::TaskLogRecorder recorder(nullptr, /*keep_in_memory=*/true);
  RunOptions options;
  options.recorder = &recorder;
  RunResult recorded = run_scenario(spec, options);
  RunResult unrecorded = run_scenario(spec);
  expect_bit_identical(recorded, unrecorded);

  std::size_t drains = 0;
  for (const tracelog::TraceIoEvent& event : recorder.log().io_events) {
    if (event.op != "drain") continue;
    ++drains;
    EXPECT_EQ(event.service, "bb");
    EXPECT_TRUE(event.task.empty());
    EXPECT_GT(event.bytes, 0.0);
  }
  // One drain record per configured drain file.
  EXPECT_EQ(drains, 8u);
}

TEST(TraceReplay, PerTaskChunkSizeSurvivesTheClosedLoop) {
  // A DAG mixing I/O granularities (the block-merge ablation's pattern):
  // the per-task chunk_size must be recorded and replayed bit-identically.
  util::Json doc = obj();
  doc.set("name", "chunky");
  doc.set("platform", node_platform());
  doc.set("workload", obj().set("type", "dag").set("workflow", util::Json::parse(R"json({
    "tasks": [
      {"name": "cold", "cpu_seconds": 1, "chunk_size": "16 MB",
       "inputs": [{"name": "data", "size": "2 GB"}]},
      {"name": "warm", "cpu_seconds": 1, "chunk_size": "160 MB",
       "inputs": [{"name": "data", "size": "2 GB"}]}
    ],
    "dependencies": [{"parent": "cold", "child": "warm"}]
  })json")));
  ClosedLoop loop = record_to_file(doc, "chunk");
  ASSERT_EQ(loop.log.workflows.size(), 1u);
  EXPECT_EQ(loop.log.workflows[0].tasks[0].chunk_size, 16.0e6);
  EXPECT_EQ(loop.log.workflows[0].tasks[1].chunk_size, 160.0e6);
  RunResult replayed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(replayed, loop.original);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, AnonymizeStripsNamesAndQuantizesSizes) {
  ClosedLoop loop = record_to_file(nighres_doc(), "anon");
  tracelog::TaskLog anon = loop.log;
  tracelog::anonymize(anon);
  anon.validate();
  EXPECT_TRUE(anon.anonymized);
  EXPECT_EQ(anon.scenario, "anonymized");

  // Same shape, no original names, quantized sizes.
  ASSERT_EQ(anon.workflows.size(), loop.log.workflows.size());
  EXPECT_EQ(anon.task_count(), loop.log.task_count());
  auto is_power_of_two = [](double v) {
    return v > 0.0 && std::exp2(std::round(std::log2(v))) == v;
  };
  for (const tracelog::TraceWorkflow& wf : anon.workflows) {
    EXPECT_EQ(wf.label, "w" + std::to_string(wf.id));
    for (const tracelog::TraceTaskDecl& task : wf.tasks) {
      EXPECT_EQ(task.name.find("skull"), std::string::npos);
      EXPECT_EQ(task.name.rfind(wf.label + ":t", 0), 0u) << task.name;
      for (const wf::FileSpec& f : task.inputs) {
        EXPECT_EQ(f.name[0], 'f') << f.name;
        EXPECT_TRUE(is_power_of_two(f.size)) << f.size;
      }
    }
  }
  // Timings and structure are untouched: the DAG still replays, and the
  // replay is run-to-run deterministic (bit-identical twice).
  EXPECT_EQ(anon.recorded_makespan, loop.log.recorded_makespan);
  const std::string anon_path = temp_log_path("anon_out");
  anon.save_file(anon_path);
  util::Json replay_doc = anon.source_scenario;
  EXPECT_FALSE(replay_doc.contains("workload"));  // original names scrubbed
  replay_doc.set("workload", obj().set("type", "trace").set("file", anon_path));
  RunResult first = run_scenario(ScenarioSpec::parse(replay_doc));
  RunResult second = run_scenario(ScenarioSpec::parse(replay_doc));
  expect_bit_identical(second, first);
  EXPECT_GT(first.makespan, 0.0);
  // File-derived dependencies survive renaming: the chained pipeline still
  // executes sequentially per instance, so task count matches.
  EXPECT_EQ(first.tasks.size(), loop.original.tasks.size());
  std::remove(loop.log_path.c_str());
  std::remove(anon_path.c_str());
}

TEST(TraceReplay, AnonymizeScrubsFileNamesInsideServiceSpecs) {
  // A burst buffer's drain set names workload files inside the *service*
  // spec; anonymization must route those through the same rename table —
  // otherwise the embedded scenario leaks the names it just stripped, and
  // replay dies in validate_workload_files (no drain target would match
  // the renamed workload).
  ScenarioSpec spec = ScenarioSpec::from_file(std::string(PCS_SOURCE_DIR) +
                                              "/scenarios/burst_buffer.json");
  tracelog::TaskLogRecorder recorder(nullptr, /*keep_in_memory=*/true);
  RunOptions options;
  options.recorder = &recorder;
  run_scenario(spec, options);
  tracelog::TaskLog anon = recorder.log();
  tracelog::anonymize(anon);
  anon.validate();

  const util::Json& drain_files =
      anon.source_scenario.at("services").at(0).at("drain_files");
  ASSERT_EQ(drain_files.size(), 8u);
  for (const util::Json& name : drain_files.as_array()) {
    EXPECT_EQ(name.as_string().find("file4"), std::string::npos) << name.as_string();
    EXPECT_EQ(name.as_string()[0], 'f');
  }
  // The anonymized log replays: drain targets resolve against the renamed
  // workload files and the burst-buffer run completes.
  const std::string anon_path = temp_log_path("anon_bb");
  anon.save_file(anon_path);
  util::Json replay_doc = anon.source_scenario;
  replay_doc.set("workload", obj().set("type", "trace").set("file", anon_path));
  RunResult replayed = run_scenario(ScenarioSpec::parse(replay_doc));
  EXPECT_GT(replayed.makespan, 0.0);
  EXPECT_EQ(replayed.tasks.size(), 24u);  // 8 instances x 3 tasks
  std::remove(anon_path.c_str());
}

TEST(TraceReplay, QuantizeSizeRoundsUpToPowersOfTwo) {
  EXPECT_EQ(tracelog::quantize_size(0.0), 0.0);
  EXPECT_EQ(tracelog::quantize_size(-5.0), 0.0);
  EXPECT_EQ(tracelog::quantize_size(1.0), 1.0);
  EXPECT_EQ(tracelog::quantize_size(3.0), 4.0);
  EXPECT_EQ(tracelog::quantize_size(1024.0), 1024.0);
  EXPECT_EQ(tracelog::quantize_size(1025.0), 2048.0);
  EXPECT_EQ(tracelog::quantize_size(2.0e9), std::exp2(31.0));
}

TEST(TraceReplay, RecorderGuardsItsLifecycle) {
  tracelog::TaskLogRecorder recorder(nullptr, false);
  EXPECT_THROW(recorder.finish(1.0), tracelog::TraceError);
  recorder.begin("s", "wrench_cache", util::Json{});
  EXPECT_THROW(recorder.begin("s", "wrench_cache", util::Json{}), tracelog::TraceError);
  EXPECT_THROW((void)recorder.log(), tracelog::TraceError);  // stream-only
  recorder.finish(1.0);
  EXPECT_THROW(recorder.finish(1.0), tracelog::TraceError);
}

// --- Streaming replay (tracelog::TaskLogReader) ----------------------------

TEST(TraceStreaming, NighresClosedLoopIsBitIdentical) {
  ClosedLoop loop = record_to_file(nighres_doc(), "stream_nighres");
  loop.replay_doc.set("workload", obj()
                                      .set("type", "trace")
                                      .set("file", loop.log_path)
                                      .set("streaming", true));
  RunResult streamed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(streamed, loop.original);
  std::remove(loop.log_path.c_str());
}

TEST(TraceStreaming, MultiTenantClosedLoopIsBitIdenticalEvenWithWindowOne) {
  // window 1 is the thrash mode: every workflow() call may evict the only
  // cached declaration, so deferred materialization runs against constant
  // re-parsing — the timings must not notice.
  ClosedLoop loop = record_to_file(multi_tenant_doc(), "stream_mt");
  loop.replay_doc.set("workload", obj()
                                      .set("type", "trace")
                                      .set("file", loop.log_path)
                                      .set("streaming", true)
                                      .set("window", 1));
  RunResult streamed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(streamed, loop.original);
  std::remove(loop.log_path.c_str());
}

TEST(TraceStreaming, LoadFactorClonesMatchTheMaterializedReplay) {
  // Clones pull the same recorded workflows at staggered virtual times —
  // out-of-order access through the window.  The oracle is the materialized
  // replay of the identical workload spec, not the original run.
  ClosedLoop loop = record_to_file(nighres_doc(), "stream_load");
  util::Json workload = obj()
                            .set("type", "trace")
                            .set("file", loop.log_path)
                            .set("load_factor", 2)
                            .set("stagger", 10.0);
  loop.replay_doc.set("workload", workload);
  RunResult materialized = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  loop.replay_doc.set("workload", workload.set("streaming", true).set("window", 1));
  RunResult streamed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(streamed, materialized);
  std::remove(loop.log_path.c_str());
}

TEST(TraceStreaming, CommittedTraceStreamsBitIdenticalToMaterialized) {
  const std::string committed =
      std::string(PCS_SOURCE_DIR) + "/scenarios/traces/nighres_run.jsonl";
  tracelog::TaskLog log = tracelog::TaskLog::from_file(committed);
  log.validate();
  util::Json replay_doc = log.source_scenario;
  replay_doc.set("workload", obj().set("type", "trace").set("file", committed));
  RunResult materialized = run_scenario(ScenarioSpec::parse(replay_doc));
  replay_doc.set("workload", obj()
                                 .set("type", "trace")
                                 .set("file", committed)
                                 .set("streaming", true));
  RunResult streamed = run_scenario(ScenarioSpec::parse(replay_doc));
  expect_bit_identical(streamed, materialized);
  EXPECT_EQ(streamed.makespan, log.recorded_makespan);
}

void expect_same_decl(const tracelog::TraceTaskDecl& got, const tracelog::TraceTaskDecl& want) {
  EXPECT_EQ(got.name, want.name);
  EXPECT_EQ(got.flops, want.flops);
  EXPECT_EQ(got.chunk_size, want.chunk_size);
  EXPECT_EQ(got.deps, want.deps);
  ASSERT_EQ(got.inputs.size(), want.inputs.size());
  ASSERT_EQ(got.outputs.size(), want.outputs.size());
  for (std::size_t f = 0; f < want.inputs.size(); ++f) {
    EXPECT_EQ(got.inputs[f].name, want.inputs[f].name);
    EXPECT_EQ(got.inputs[f].size, want.inputs[f].size);
  }
  for (std::size_t f = 0; f < want.outputs.size(); ++f) {
    EXPECT_EQ(got.outputs[f].name, want.outputs[f].name);
    EXPECT_EQ(got.outputs[f].size, want.outputs[f].size);
  }
}

void expect_same_workflow(const tracelog::TraceWorkflow& got,
                          const tracelog::TraceWorkflow& want) {
  EXPECT_EQ(got.id, want.id);
  EXPECT_EQ(got.label, want.label);
  EXPECT_EQ(got.service, want.service);
  EXPECT_EQ(got.submit, want.submit);
  ASSERT_EQ(got.tasks.size(), want.tasks.size());
  for (std::size_t t = 0; t < want.tasks.size(); ++t) {
    expect_same_decl(got.tasks[t], want.tasks[t]);
  }
}

TEST(TraceStreaming, ReaderPrescanMatchesTheMaterializedSummary) {
  ClosedLoop loop = record_to_file(multi_tenant_doc(), "stream_summary");
  tracelog::TaskLogReader reader(loop.log_path);
  EXPECT_EQ(reader.version(), loop.log.version);
  EXPECT_EQ(reader.scenario(), loop.log.scenario);
  EXPECT_EQ(reader.workflows().size(), loop.log.workflows.size());
  EXPECT_EQ(reader.task_count(), loop.log.task_count());
  EXPECT_EQ(reader.task_event_count(), loop.log.task_events.size());
  EXPECT_EQ(reader.io_event_count(), loop.log.io_events.size());
  EXPECT_EQ(reader.total_read_bytes(), loop.log.total_read_bytes());
  EXPECT_EQ(reader.total_written_bytes(), loop.log.total_written_bytes());
  EXPECT_EQ(reader.first_submit(), loop.log.first_submit());
  EXPECT_EQ(reader.last_task_end(), loop.log.last_task_end());
  EXPECT_EQ(reader.recorded_makespan(), loop.log.recorded_makespan);
  // On-demand loads reproduce the materialized declarations exactly.
  for (std::size_t i = 0; i < loop.log.workflows.size(); ++i) {
    expect_same_workflow(reader.workflow(i), loop.log.workflows[i]);
  }
  std::remove(loop.log_path.c_str());
}

TEST(TraceStreaming, HundredThousandTaskLogStreamsThroughABoundedWindow) {
  // A generated log far bigger than anything this suite records: 25k
  // workflows x 4 chained tasks = 100k declarations plus an event stream.
  // The reader must hold at most `window` parsed workflows at any moment
  // while an exhaustive scan touches all of them.
  constexpr int kWorkflows = 25000;
  const std::string path = temp_log_path("stream_big");
  {
    std::ofstream out(path);
    out << "{\"rec\":\"header\",\"version\":1,\"scenario\":\"big\"}\n";
    for (int k = 0; k < kWorkflows; ++k) {
      const std::string w = "w" + std::to_string(k);
      out << "{\"rec\":\"workflow\",\"id\":" << k << ",\"label\":\"" << w
          << "\",\"service\":\"\",\"submit\":" << k << "}\n";
      for (int t = 0; t < 4; ++t) {
        out << "{\"rec\":\"task\",\"wf\":" << k << ",\"name\":\"" << w << ":t" << t
            << "\",\"flops\":1";
        if (t > 0) out << ",\"deps\":[\"" << w << ":t" << (t - 1) << "\"]";
        out << ",\"inputs\":[{\"name\":\"" << w << ":f" << t << "\",\"size\":1000}]}\n";
      }
      // Interleave an event record per workflow: events must be counted and
      // dropped by the pre-scan, never buffered.
      out << "{\"rec\":\"task_done\",\"name\":\"" << w << ":t0\",\"host\":\"h\","
          << "\"start\":0,\"read_start\":0,\"read_end\":1,\"compute_end\":2,"
          << "\"write_end\":3,\"end\":3}\n";
    }
  }

  constexpr std::size_t kWindow = 32;
  tracelog::TaskLogReader reader(path, kWindow);
  ASSERT_EQ(reader.workflows().size(), static_cast<std::size_t>(kWorkflows));
  EXPECT_EQ(reader.task_count(), 4u * kWorkflows);
  EXPECT_EQ(reader.task_event_count(), static_cast<std::size_t>(kWorkflows));

  // Sequential sweep, then a wrap-around revisit to force evictions.
  for (int k = 0; k < kWorkflows; ++k) {
    const tracelog::TraceWorkflow& wf = reader.workflow(static_cast<std::size_t>(k));
    ASSERT_EQ(wf.tasks.size(), 4u);
    EXPECT_EQ(wf.label, "w" + std::to_string(k));
  }
  EXPECT_EQ(reader.workflow(0).label, "w0");  // evicted long ago: re-parse

  EXPECT_LE(reader.window_peak(), kWindow);
  EXPECT_LE(reader.window_blocks(), kWindow);
  EXPECT_GE(reader.parse_count(), static_cast<std::size_t>(kWorkflows) + 1);
  // The buffered bytes track the window, not the log: far below 1% of the
  // ~12 MB file even with per-entry overhead.
  EXPECT_GT(reader.bytes_buffered(), 0u);
  EXPECT_LT(reader.bytes_buffered(), 100u * 1024u);

  // Spot-check the parsed content against the materialized parse.
  tracelog::TaskLog log = tracelog::TaskLog::from_file(path);
  log.validate();
  ASSERT_EQ(log.workflows.size(), static_cast<std::size_t>(kWorkflows));
  for (std::size_t i : {std::size_t{0}, std::size_t{12345}, std::size_t{24999}}) {
    expect_same_workflow(reader.workflow(i), log.workflows[i]);
  }
  std::remove(path.c_str());
}

TEST(TraceStreaming, ReaderRejectsInterleavedDeclarations) {
  // Legal for the materialized parser, but streaming needs recorder order:
  // workflow 1's record interrupts workflow 0's task block.
  const std::string path = temp_log_path("stream_interleaved");
  {
    std::ofstream out(path);
    out << "{\"rec\":\"header\",\"version\":1}\n"
        << "{\"rec\":\"workflow\",\"id\":0,\"label\":\"a\",\"service\":\"\",\"submit\":0}\n"
        << "{\"rec\":\"workflow\",\"id\":1,\"label\":\"b\",\"service\":\"\",\"submit\":0}\n"
        << "{\"rec\":\"task\",\"wf\":0,\"name\":\"t\",\"flops\":1}\n";
  }
  tracelog::TaskLog materialized = tracelog::TaskLog::from_file(path);
  EXPECT_NO_THROW(materialized.validate());
  try {
    tracelog::TaskLogReader reader(path);
    FAIL() << "expected TraceError";
  } catch (const tracelog::TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("not contiguous"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(TraceStreaming, RunnerExportsWindowGauges) {
  // A streaming run with metric sampling registers the reader's window
  // gauges; the sampled timeline proves the window stayed bounded while
  // the replay was live.
  ClosedLoop loop = record_to_file(nighres_doc(), "stream_gauges");
  loop.replay_doc.set("workload", obj()
                                      .set("type", "trace")
                                      .set("file", loop.log_path)
                                      .set("streaming", true)
                                      .set("window", 1));
  loop.replay_doc.set("metrics", obj().set("interval", 5.0));
  RunResult streamed = run_scenario(ScenarioSpec::parse(loop.replay_doc));
  expect_bit_identical(streamed, loop.original);
  const util::Json& metrics = streamed.timeline.at("metrics");
  ASSERT_TRUE(metrics.contains("alloc/trace_window_workflows"));
  ASSERT_TRUE(metrics.contains("alloc/trace_window_bytes"));
  ASSERT_TRUE(metrics.contains("alloc/arena_bytes"));
  double max_cached = 0.0;
  for (const util::Json& v : metrics.at("alloc/trace_window_workflows").as_array()) {
    max_cached = std::max(max_cached, v.as_number());
  }
  EXPECT_LE(max_cached, 1.0);
  std::remove(loop.log_path.c_str());
}

TEST(TraceReplay, PrototypeSimulatorCannotRecord) {
  util::Json doc = obj();
  doc.set("name", "proto");
  doc.set("simulator", "prototype");
  doc.set("platform", node_platform());
  tracelog::TaskLogRecorder recorder(nullptr, true);
  RunOptions options;
  options.recorder = &recorder;
  EXPECT_THROW(run_scenario(ScenarioSpec::parse(doc), options), ScenarioError);
}

}  // namespace
}  // namespace pcs::scenario
