#include "simcore/trace.hpp"

#include <gtest/gtest.h>

#include "simcore/engine.hpp"
#include "test_helpers.hpp"

namespace pcs::sim {
namespace {

TEST(Tracer, RecordsActivitySpans) {
  Engine engine;
  Tracer tracer;
  engine.set_tracer(&tracer);
  Resource* disk = engine.new_resource("disk", 10.0);
  auto body = [disk](Engine& e) -> Task<> {
    co_await e.submit("disk-read:f", sim::one(disk), 100.0);
    co_await e.sleep(5.0);
    co_await e.submit("disk-write:f", sim::one(disk), 50.0);
  };
  test::run_actor(engine, body(engine));

  ASSERT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "disk-read:f");
  EXPECT_DOUBLE_EQ(tracer.spans()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end, 10.0);
  EXPECT_EQ(tracer.spans()[1].name, "disk-write:f");
  EXPECT_DOUBLE_EQ(tracer.spans()[1].start, 15.0);
  EXPECT_DOUBLE_EQ(tracer.spans()[1].end, 20.0);
}

TEST(Tracer, TotalTimeByPrefix) {
  Tracer tracer;
  tracer.record("disk-read:a", 0.0, 2.0);
  tracer.record("disk-read:b", 1.0, 4.0);
  tracer.record("disk-write:a", 0.0, 7.0);
  EXPECT_DOUBLE_EQ(tracer.total_time("disk-read:"), 5.0);
  EXPECT_DOUBLE_EQ(tracer.total_time("disk-write:"), 7.0);
  EXPECT_DOUBLE_EQ(tracer.total_time("compute:"), 0.0);
}

TEST(Tracer, ChromeTraceFormat) {
  Tracer tracer;
  tracer.record("disk-read:f", 1.0, 3.5);
  util::Json doc = tracer.to_chrome_trace();
  const util::Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 1u);
  const util::Json& event = events.at(0);
  EXPECT_EQ(event.at("name").as_string(), "disk-read:f");
  EXPECT_EQ(event.at("cat").as_string(), "disk-read");
  EXPECT_EQ(event.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(event.at("ts").as_number(), 1e6);
  EXPECT_DOUBLE_EQ(event.at("dur").as_number(), 2.5e6);
}

TEST(Tracer, UncategorizedSpans) {
  Tracer tracer;
  tracer.record("plainname", 0.0, 1.0);
  util::Json doc = tracer.to_chrome_trace();
  EXPECT_EQ(doc.at("traceEvents").at(0).at("cat").as_string(), "activity");
}

TEST(Tracer, DetachedTracerCostsNothing) {
  Engine engine;
  Tracer tracer;
  engine.set_tracer(&tracer);
  engine.set_tracer(nullptr);
  Resource* disk = engine.new_resource("disk", 10.0);
  auto body = [disk](Engine& e) -> Task<> {
    co_await e.submit("io", sim::one(disk), 10.0);
  };
  test::run_actor(engine, body(engine));
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(Tracer, WriteFileRoundTrips) {
  Tracer tracer;
  tracer.record("compute:t", 0.0, 2.0);
  const std::string path = ::testing::TempDir() + "/pcs_trace_test.json";
  tracer.write(path);
  util::Json loaded = util::Json::parse_file(path);
  EXPECT_EQ(loaded.at("traceEvents").size(), 1u);
  EXPECT_THROW(tracer.write("/nonexistent-dir/x.json"), util::JsonError);
}

TEST(Tracer, ClearResets) {
  Tracer tracer;
  tracer.record("a", 0.0, 1.0);
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
}

}  // namespace
}  // namespace pcs::sim
