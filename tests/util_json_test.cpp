#include "util/json.hpp"

#include <gtest/gtest.h>

namespace pcs::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, Strings) {
  EXPECT_EQ(Json::parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(Json::parse(R"("line\nbreak")").as_string(), "line\nbreak");
  EXPECT_EQ(Json::parse(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(Json::parse(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParse, Containers) {
  Json arr = Json::parse("[1, 2, 3]");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr.at(1).as_number(), 2.0);

  Json obj = Json::parse(R"({"a": 1, "b": [true, null]})");
  ASSERT_TRUE(obj.is_object());
  EXPECT_DOUBLE_EQ(obj.at("a").as_number(), 1.0);
  EXPECT_TRUE(obj.at("b").at(1).is_null());
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("z"));
}

TEST(JsonParse, NestedDeep) {
  Json v = Json::parse(R"({"a":{"b":{"c":[{"d": 7}]}}})");
  EXPECT_DOUBLE_EQ(v.at("a").at("b").at("c").at(0).at("d").as_number(), 7.0);
}

TEST(JsonParse, CommentsAndTrailingCommas) {
  Json v = Json::parse("// header comment\n{\"a\": 1, // inline\n \"b\": [1, 2,], }");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.0);
  EXPECT_EQ(v.at("b").size(), 2u);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_EQ(Json::parse("{}").size(), 0u);
  EXPECT_EQ(Json::parse("[ ]").size(), 0u);
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1, 2"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("{'a': 1}"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("[1, , 2]"), JsonError);
  EXPECT_THROW(Json::parse("01x"), JsonError);
}

TEST(JsonParse, ErrorMessageHasLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": ???\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(JsonAccess, TypeErrors) {
  Json v = Json::parse("[1]");
  EXPECT_THROW((void)v.as_object(), JsonError);
  EXPECT_THROW((void)v.at("key"), JsonError);
  EXPECT_THROW((void)v.at(5), JsonError);
  EXPECT_THROW((void)Json(1.0).size(), JsonError);
}

TEST(JsonAccess, Defaults) {
  Json obj = Json::parse(R"({"x": 3, "s": "v", "f": false})");
  EXPECT_DOUBLE_EQ(obj.number_or("x", 9.0), 3.0);
  EXPECT_DOUBLE_EQ(obj.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(obj.string_or("s", "d"), "v");
  EXPECT_EQ(obj.string_or("missing", "d"), "d");
  EXPECT_EQ(obj.bool_or("f", true), false);
  EXPECT_EQ(obj.bool_or("missing", true), true);
}

TEST(JsonBuild, SetAndPush) {
  Json obj;
  obj.set("name", "x").set("value", 3);
  Json arr;
  arr.push_back(1).push_back("two");
  obj.set("list", arr);
  EXPECT_EQ(obj.at("name").as_string(), "x");
  EXPECT_EQ(obj.at("list").at(1).as_string(), "two");
}

TEST(JsonDump, RoundTrip) {
  const std::string docs[] = {
      "null",
      "true",
      "[1,2,3]",
      R"({"a":1,"b":[true,null,"x"],"c":{"d":2.5}})",
      R"({"esc":"a\"b\\c\nd"})",
  };
  for (const std::string& doc : docs) {
    Json parsed = Json::parse(doc);
    Json reparsed = Json::parse(parsed.dump());
    EXPECT_TRUE(parsed == reparsed) << doc;
  }
}

TEST(JsonDump, PrettyPrintParses) {
  Json v = Json::parse(R"({"a":[1,2],"b":{"c":true}})");
  Json round = Json::parse(v.dump(2));
  EXPECT_TRUE(v == round);
  EXPECT_NE(v.dump(2).find('\n'), std::string::npos);
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(JsonDump, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(JsonFile, MissingFileThrows) { EXPECT_THROW(Json::parse_file("/nonexistent"), JsonError); }

}  // namespace
}  // namespace pcs::util
