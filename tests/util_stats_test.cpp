#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/rng.hpp"

namespace pcs::util {
namespace {

TEST(Summarize, Basic) {
  std::array<double, 5> values = {1, 2, 3, 4, 5};
  Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Summarize, Empty) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  std::array<double, 1> values = {7.5};
  Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Percentile, Errors) {
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101), std::invalid_argument);
}

TEST(AbsoluteRelativeError, Basic) {
  EXPECT_DOUBLE_EQ(absolute_relative_error_pct(150, 100), 50.0);
  EXPECT_DOUBLE_EQ(absolute_relative_error_pct(50, 100), 50.0);
  EXPECT_DOUBLE_EQ(absolute_relative_error_pct(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(absolute_relative_error_pct(0, 0), 0.0);
  EXPECT_THROW((void)absolute_relative_error_pct(1, 0), std::invalid_argument);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {3, 5, 7, 9, 11};  // y = 2x + 1
  LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_LT(fit.p_value, 1e-6);
}

TEST(LinearFit, NoisyLineStillSignificant) {
  // Fig 8 of the paper reports p < 1e-24 for its regressions; check that a
  // strongly linear series yields a tiny p-value here too.
  Rng rng(7);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 32; ++i) {
    x.push_back(i);
    y.push_back(0.05 * i + 0.02 + rng.uniform(-0.005, 0.005));
  }
  LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.05, 0.005);
  EXPECT_GT(fit.r2, 0.98);
  EXPECT_LT(fit.p_value, 1e-20);
}

TEST(LinearFit, FlatLineInsignificantSlope) {
  Rng rng(11);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(5.0 + rng.uniform(-1.0, 1.0));
  }
  LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 0.05);
  EXPECT_GT(fit.p_value, 0.01);
}

TEST(LinearFit, Errors) {
  std::vector<double> one = {1.0};
  EXPECT_THROW((void)linear_fit(one, one), std::invalid_argument);
  std::vector<double> x = {1, 2};
  std::vector<double> y = {1, 2, 3};
  EXPECT_THROW((void)linear_fit(x, y), std::invalid_argument);
  std::vector<double> constant = {2, 2, 2};
  std::vector<double> ys = {1, 2, 3};
  EXPECT_THROW((void)linear_fit(constant, ys), std::invalid_argument);
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  Rng c(1);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = c.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
  }
}

}  // namespace
}  // namespace pcs::util
