#include "util/units.hpp"

#include <gtest/gtest.h>

namespace pcs::util {
namespace {

using namespace pcs::util::literals;

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ(3_GB, 3e9);
  EXPECT_DOUBLE_EQ(100_MB, 1e8);
  EXPECT_DOUBLE_EQ(1_KiB, 1024.0);
  EXPECT_DOUBLE_EQ(250_GiB, 250.0 * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(465_MBps, 465e6);
}

TEST(FormatBytes, Ranges) {
  EXPECT_EQ(format_bytes(0), "0.00 B");
  EXPECT_EQ(format_bytes(999), "999.00 B");
  EXPECT_EQ(format_bytes(1500), "1.50 KB");
  EXPECT_EQ(format_bytes(20e9), "20.00 GB");
  EXPECT_EQ(format_bytes(2.5e12), "2.50 TB");
}

TEST(FormatSeconds, Ranges) {
  EXPECT_EQ(format_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(format_seconds(0.0025), "2.5 ms");
  EXPECT_EQ(format_seconds(12.345), "12.35 s");
}

TEST(ParseBytes, Suffixes) {
  EXPECT_DOUBLE_EQ(parse_bytes("1024"), 1024.0);
  EXPECT_DOUBLE_EQ(parse_bytes("512B"), 512.0);
  EXPECT_DOUBLE_EQ(parse_bytes("3 GB"), 3e9);
  EXPECT_DOUBLE_EQ(parse_bytes("2.5GB"), 2.5e9);
  EXPECT_DOUBLE_EQ(parse_bytes("250 GiB"), 250.0 * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(parse_bytes("1 MiB"), 1024.0 * 1024);
  EXPECT_DOUBLE_EQ(parse_bytes("7 kB"), 7e3);
  EXPECT_DOUBLE_EQ(parse_bytes("  42 MB  "), 42e6);
}

TEST(ParseBytes, Errors) {
  EXPECT_THROW((void)parse_bytes(""), std::invalid_argument);
  EXPECT_THROW((void)parse_bytes("GB"), std::invalid_argument);
  EXPECT_THROW((void)parse_bytes("12 XB"), std::invalid_argument);
}

}  // namespace
}  // namespace pcs::util
