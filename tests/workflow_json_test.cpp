#include "workflow/workflow_json.hpp"

#include <gtest/gtest.h>

namespace pcs::wf {
namespace {

constexpr const char* kDoc = R"json({
  "reference_gflops": 2,
  "tasks": [
    {"name": "a", "cpu_seconds": 3,
     "inputs":  [{"name": "raw", "size": "2 GB"}],
     "outputs": [{"name": "mid", "size": 1000000}]},
    {"name": "b", "flops": 7e9,
     "inputs":  [{"name": "mid", "size": 1000000}],
     "outputs": [{"name": "out", "size": "500 MB"}]}
  ],
  "dependencies": [{"parent": "a", "child": "b"}]
})json";

TEST(WorkflowJson, ParsesTasksFilesAndDeps) {
  Workflow wf = workflow_from_json(util::Json::parse(kDoc));
  EXPECT_EQ(wf.task_count(), 2u);
  // cpu_seconds * reference_gflops: 3 s at 2 Gflops = 6e9 flops.
  EXPECT_DOUBLE_EQ(wf.task("a").flops, 6e9);
  EXPECT_DOUBLE_EQ(wf.task("b").flops, 7e9);
  ASSERT_EQ(wf.task("a").inputs.size(), 1u);
  EXPECT_DOUBLE_EQ(wf.task("a").inputs[0].size, 2e9);
  EXPECT_DOUBLE_EQ(wf.task("b").outputs[0].size, 5e8);
  EXPECT_TRUE(wf.parents_of("b").count("a"));
  auto ext = wf.external_inputs();
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0].name, "raw");
}

TEST(WorkflowJson, MissingFlopsRejected) {
  EXPECT_THROW(workflow_from_json(util::Json::parse(R"({"tasks":[{"name":"x"}]})")),
               WorkflowError);
}

TEST(WorkflowJson, CycleRejectedAtParse) {
  const char* cyclic = R"json({
    "tasks": [{"name": "a", "flops": 1}, {"name": "b", "flops": 1}],
    "dependencies": [{"parent": "a", "child": "b"}, {"parent": "b", "child": "a"}]
  })json";
  EXPECT_THROW(workflow_from_json(util::Json::parse(cyclic)), WorkflowError);
}

TEST(WorkflowJson, MalformedDocumentRejected) {
  EXPECT_THROW(workflow_from_json(util::Json::parse("{}")), util::JsonError);
  EXPECT_THROW(workflow_from_json_file("/nonexistent.json"), util::JsonError);
}

TEST(WorkflowJson, RoundTrip) {
  Workflow original = workflow_from_json(util::Json::parse(kDoc));
  util::Json dumped = workflow_to_json(original);
  Workflow reloaded = workflow_from_json(dumped);
  EXPECT_EQ(reloaded.task_count(), original.task_count());
  for (const std::string& name : original.task_order()) {
    EXPECT_DOUBLE_EQ(reloaded.task(name).flops, original.task(name).flops);
    EXPECT_EQ(reloaded.task(name).inputs.size(), original.task(name).inputs.size());
    EXPECT_EQ(reloaded.parents_of(name), original.parents_of(name));
  }
}

TEST(WorkflowJson, SerializedDependenciesAreExplicitOnly) {
  Workflow wf;
  wf.add_task("p", 1.0);
  wf.add_task("c", 1.0);
  wf.add_output("p", "f", 10.0);
  wf.add_input("c", "f", 10.0);  // file-derived dependency
  util::Json doc = workflow_to_json(wf);
  EXPECT_EQ(doc.at("dependencies").size(), 0u);  // derived deps come from files
  Workflow reloaded = workflow_from_json(doc);
  EXPECT_TRUE(reloaded.parents_of("c").count("p"));  // still derived on reload
}

}  // namespace
}  // namespace pcs::wf
