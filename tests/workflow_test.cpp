#include "workflow/workflow.hpp"

#include <gtest/gtest.h>

namespace pcs::wf {
namespace {

TEST(Workflow, AddTaskAndLookup) {
  Workflow wf;
  wf.add_task("t1", 1e9);
  EXPECT_EQ(wf.task_count(), 1u);
  EXPECT_DOUBLE_EQ(wf.task("t1").flops, 1e9);
  EXPECT_THROW((void)wf.task("ghost"), WorkflowError);
  EXPECT_THROW(wf.add_task("t1", 1.0), WorkflowError);
  EXPECT_THROW(wf.add_task("t2", -1.0), WorkflowError);
}

TEST(Workflow, FileDerivedDependencies) {
  Workflow wf;
  wf.add_task("producer", 1.0);
  wf.add_task("consumer", 1.0);
  wf.add_output("producer", "data", 100.0);
  wf.add_input("consumer", "data", 100.0);
  auto parents = wf.parents_of("consumer");
  EXPECT_EQ(parents.size(), 1u);
  EXPECT_TRUE(parents.count("producer"));
  EXPECT_TRUE(wf.parents_of("producer").empty());
}

TEST(Workflow, ExplicitDependencies) {
  Workflow wf;
  wf.add_task("a", 1.0);
  wf.add_task("b", 1.0);
  wf.add_dependency("a", "b");
  EXPECT_TRUE(wf.parents_of("b").count("a"));
  EXPECT_THROW(wf.add_dependency("a", "a"), WorkflowError);
  EXPECT_THROW(wf.add_dependency("ghost", "b"), WorkflowError);
}

TEST(Workflow, DuplicateProducerRejected) {
  Workflow wf;
  wf.add_task("a", 1.0);
  wf.add_task("b", 1.0);
  wf.add_output("a", "f", 10.0);
  EXPECT_THROW(wf.add_output("b", "f", 10.0), WorkflowError);
}

TEST(Workflow, ReadyTasksRespectCompletion) {
  Workflow wf;
  wf.add_task("a", 1.0);
  wf.add_task("b", 1.0);
  wf.add_task("c", 1.0);
  wf.add_dependency("a", "b");
  wf.add_dependency("b", "c");
  EXPECT_EQ(wf.ready_tasks({}), (std::vector<std::string>{"a"}));
  EXPECT_EQ(wf.ready_tasks({"a"}), (std::vector<std::string>{"b"}));
  EXPECT_EQ(wf.ready_tasks({"a", "b"}), (std::vector<std::string>{"c"}));
  EXPECT_TRUE(wf.ready_tasks({"a", "b", "c"}).empty());
}

TEST(Workflow, DiamondReadySet) {
  Workflow wf;
  for (const char* name : {"root", "left", "right", "join"}) wf.add_task(name, 1.0);
  wf.add_dependency("root", "left");
  wf.add_dependency("root", "right");
  wf.add_dependency("left", "join");
  wf.add_dependency("right", "join");
  auto ready = wf.ready_tasks({"root"});
  EXPECT_EQ(ready.size(), 2u);
  EXPECT_TRUE(wf.ready_tasks({"root", "left"}).size() == 1);  // only right
  EXPECT_EQ(wf.ready_tasks({"root", "left", "right"}), (std::vector<std::string>{"join"}));
}

TEST(Workflow, ExternalInputs) {
  Workflow wf;
  wf.add_task("t1", 1.0);
  wf.add_task("t2", 1.0);
  wf.add_input("t1", "raw", 100.0);
  wf.add_output("t1", "mid", 50.0);
  wf.add_input("t2", "mid", 50.0);
  wf.add_input("t2", "config", 5.0);
  auto ext = wf.external_inputs();
  ASSERT_EQ(ext.size(), 2u);
  EXPECT_EQ(ext[0].name, "raw");
  EXPECT_EQ(ext[1].name, "config");
}

TEST(Workflow, CycleDetection) {
  Workflow wf;
  wf.add_task("a", 1.0);
  wf.add_task("b", 1.0);
  wf.add_dependency("a", "b");
  wf.add_dependency("b", "a");
  EXPECT_THROW(wf.validate(), WorkflowError);
}

TEST(Workflow, ValidDagPasses) {
  Workflow wf;
  wf.add_task("a", 1.0);
  wf.add_task("b", 1.0);
  wf.add_task("c", 1.0);
  wf.add_dependency("a", "b");
  wf.add_dependency("a", "c");
  EXPECT_NO_THROW(wf.validate());
}

TEST(Workflow, TaskByteHelpers) {
  Workflow wf;
  wf.add_task("t", 1.0);
  wf.add_input("t", "i1", 100.0);
  wf.add_input("t", "i2", 50.0);
  wf.add_output("t", "o1", 30.0);
  EXPECT_DOUBLE_EQ(wf.task("t").input_bytes(), 150.0);
  EXPECT_DOUBLE_EQ(wf.task("t").output_bytes(), 30.0);
}

}  // namespace
}  // namespace pcs::wf
