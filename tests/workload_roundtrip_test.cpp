// Satellite coverage for the workload generators: every generator type
// survives the ScenarioSpec::to_json → parse → run round trip with a
// bit-identical RunResult.  A generator whose effective dump drops or
// mangles a knob would diverge here.
#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

#ifndef PCS_SOURCE_DIR
#define PCS_SOURCE_DIR "."
#endif

namespace pcs::scenario {
namespace {

util::Json obj() { return util::Json{util::JsonObject{}}; }

util::Json node_platform() {
  return util::Json::parse(R"json({
    "hosts": [
      {"name": "node0", "speed_gflops": 1, "cores": 8, "ram": "32 GB",
       "memory": {"read_bw_MBps": 6860, "write_bw_MBps": 2764},
       "disks": [{"name": "ssd0", "read_bw_MBps": 510, "write_bw_MBps": 420}]}
    ]
  })json");
}

/// Run `doc` directly and through the effective-dump round trip; both runs
/// must be bit-identical in every simulated quantity.
void expect_roundtrip_identical(const util::Json& doc, const std::string& base_dir = "") {
  ScenarioSpec spec = ScenarioSpec::parse(doc, base_dir);
  RunResult direct = run_scenario(spec);

  // Through serialized text, not just the Json tree: %.17g must carry every
  // double (sizes, flops, arrivals) without loss.
  ScenarioSpec again = ScenarioSpec::parse(util::Json::parse(spec.to_json().dump(2)));
  RunResult redone = run_scenario(again);

  EXPECT_EQ(redone.makespan, direct.makespan);
  EXPECT_EQ(redone.scheduling_points, direct.scheduling_points);
  EXPECT_EQ(redone.fair_share_solves, direct.fair_share_solves);
  ASSERT_EQ(redone.tasks.size(), direct.tasks.size());
  for (const wf::TaskResult& want : direct.tasks) {
    const wf::TaskResult& got = redone.task(want.name);
    EXPECT_EQ(got.start, want.start) << want.name;
    EXPECT_EQ(got.read_end, want.read_end) << want.name;
    EXPECT_EQ(got.compute_end, want.compute_end) << want.name;
    EXPECT_EQ(got.write_end, want.write_end) << want.name;
    EXPECT_EQ(got.end, want.end) << want.name;
  }
  EXPECT_EQ(redone.final_state.cached, direct.final_state.cached);
  EXPECT_EQ(redone.final_state.dirty, direct.final_state.dirty);
}

TEST(WorkloadRoundTrip, Synthetic) {
  util::Json doc = obj();
  doc.set("platform", node_platform());
  doc.set("workload", obj()
                          .set("type", "synthetic")
                          .set("input_size", "2 GB")
                          .set("instances", 3)
                          .set("stagger", 25.0));
  expect_roundtrip_identical(doc);
}

TEST(WorkloadRoundTrip, Nighres) {
  util::Json doc = obj();
  doc.set("platform", node_platform());
  doc.set("workload", obj().set("type", "nighres").set("instances", 2));
  doc.set("chunk_size", "50 MB");
  expect_roundtrip_identical(doc);
}

TEST(WorkloadRoundTrip, DagInline) {
  util::Json doc = obj();
  doc.set("platform", node_platform());
  util::Json wf_doc = util::Json::parse(R"json({
    "tasks": [
      {"name": "ingest", "cpu_seconds": 2,
       "inputs":  [{"name": "raw", "size": "1 GB"}],
       "outputs": [{"name": "clean", "size": "500 MB"}]},
      {"name": "report", "cpu_seconds": 1,
       "inputs":  [{"name": "clean", "size": "500 MB"}],
       "outputs": [{"name": "summary", "size": "10 MB"}]}
    ]
  })json");
  doc.set("workload",
          obj().set("type", "dag").set("workflow", wf_doc).set("instances", 2));
  expect_roundtrip_identical(doc);
}

TEST(WorkloadRoundTrip, MultiTenant) {
  util::Json doc = obj();
  doc.set("platform", node_platform());
  util::Json svcs{util::JsonArray{}};
  svcs.push_back(obj().set("name", "fast").set("type", "local"));
  svcs.push_back(obj()
                     .set("name", "throttled")
                     .set("type", "local")
                     .set("params", obj().set("dirty_ratio", 0.05)));
  doc.set("services", std::move(svcs));
  util::Json tenants{util::JsonArray{}};
  tenants.push_back(obj()
                        .set("name", "alpha")
                        .set("type", "synthetic")
                        .set("input_size", "2 GB")
                        .set("instances", 2)
                        .set("stagger", 30.0)
                        .set("service", "fast"));
  tenants.push_back(obj()
                        .set("name", "beta")
                        .set("type", "nighres")
                        .set("arrival", 10.0)
                        .set("service", "throttled"));
  doc.set("workload", obj().set("type", "multi_tenant").set("tenants", std::move(tenants)));
  expect_roundtrip_identical(doc);
}

TEST(WorkloadRoundTrip, Trace) {
  // The committed nighres recording; "file" is relative to the scenarios
  // dir and must be absolutized by the parse so the dump runs from any cwd.
  util::Json doc = obj();
  doc.set("platform", node_platform());
  doc.set("workload", obj()
                          .set("type", "trace")
                          .set("file", "traces/nighres_run.jsonl")
                          .set("load_factor", 2)
                          .set("stagger", 15.0));
  doc.set("chunk_size", "50 MB");
  expect_roundtrip_identical(doc, PCS_SOURCE_DIR "/scenarios");
}

}  // namespace
}  // namespace pcs::scenario
