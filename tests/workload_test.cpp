// The workload generator layer: spec-driven expansion into workflow
// instances with prefixes, arrivals and service bindings.
#include <gtest/gtest.h>

#include "util/units.hpp"
#include "workflow/simulation.hpp"
#include "workload/apps.hpp"
#include "workload/workload.hpp"

namespace pcs::workload {
namespace {

using util::GB;

util::Json obj() { return util::Json{util::JsonObject{}}; }

TEST(Workload, SyntheticExpandsInstancesWithPrefixes) {
  wf::Simulation sim;
  util::Json spec = obj()
                        .set("type", "synthetic")
                        .set("input_size", "3 GB")
                        .set("instances", 3)
                        .set("stagger", 10.0)
                        .set("service", "fast");
  auto instances = build_workload(sim, spec);
  ASSERT_EQ(instances.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(instances[i].arrival, 10.0 * i);
    EXPECT_EQ(instances[i].service, "fast");
    EXPECT_EQ(instances[i].workflow->task_count(), 3u);
    EXPECT_NO_THROW((void)instances[i].workflow->task(instance_prefix(i) + "task1"));
  }
  // Default CPU time comes from the Table I interpolation.
  EXPECT_DOUBLE_EQ(instances[0].workflow->task("a0:task1").flops,
                   synthetic_cpu_seconds(3.0 * GB) * 1e9);
}

TEST(Workload, NighresAndDefaults) {
  wf::Simulation sim;
  auto instances = build_workload(sim, obj().set("type", "nighres"));
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].workflow->task_count(), 4u);
  EXPECT_EQ(instances[0].arrival, 0.0);
  EXPECT_NO_THROW((void)instances[0].workflow->task("a0:skull_stripping"));
}

TEST(Workload, DagPrefixingKeepsSingleInstanceNamesBare) {
  util::Json wf_doc = util::Json::parse(R"json({
    "tasks": [
      {"name": "t1", "cpu_seconds": 1,
       "inputs": [{"name": "in", "size": 1000}],
       "outputs": [{"name": "mid", "size": 1000}]},
      {"name": "t2", "cpu_seconds": 1,
       "inputs": [{"name": "mid", "size": 1000}]}
    ],
    "dependencies": [{"parent": "t1", "child": "t2"}]
  })json");

  wf::Simulation sim;
  auto solo = build_workload(sim, obj().set("type", "dag").set("workflow", wf_doc));
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_NO_THROW((void)solo[0].workflow->task("t1"));

  auto pair = build_workload(sim, obj().set("type", "dag").set("workflow", wf_doc)
                                      .set("instances", 2));
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_NO_THROW((void)pair[1].workflow->task("a1:t2"));
  EXPECT_TRUE(pair[1].workflow->parents_of("a1:t2").count("a1:t1"));
  EXPECT_THROW(pair[0].workflow->task("t1"), wf::WorkflowError);
}

TEST(Workload, MultiTenantComposesAndNamespaces) {
  wf::Simulation sim;
  util::Json tenants{util::JsonArray{}};
  tenants.push_back(obj().set("type", "synthetic").set("input_size", "2 GB").set("instances", 2));
  tenants.push_back(obj().set("name", "img").set("type", "nighres").set("arrival", 50.0)
                        .set("service", "slow"));
  auto instances =
      build_workload(sim, obj().set("type", "multi_tenant").set("tenants", tenants));
  ASSERT_EQ(instances.size(), 3u);
  EXPECT_NO_THROW((void)instances[0].workflow->task("t0:a0:task1"));
  EXPECT_NO_THROW((void)instances[2].workflow->task("img:a0:skull_stripping"));
  EXPECT_EQ(instances[2].arrival, 50.0);
  EXPECT_EQ(instances[2].service, "slow");
  EXPECT_EQ(instances[0].service, "");
}

TEST(Workload, RejectsMalformedSpecs) {
  wf::Simulation sim;
  EXPECT_THROW(build_workload(sim, util::Json("x")), WorkloadError);
  EXPECT_THROW(build_workload(sim, obj().set("type", "quantum")), WorkloadError);
  EXPECT_THROW(build_workload(sim, obj().set("instances", 0)), WorkloadError);
  EXPECT_THROW(build_workload(sim, obj().set("arrival", -1.0)), WorkloadError);
  EXPECT_THROW(build_workload(sim, obj().set("type", "synthetic").set("input_size", -1.0)),
               WorkloadError);
  EXPECT_THROW(build_workload(sim, obj().set("type", "dag")), WorkloadError);
  EXPECT_THROW(build_workload(sim, obj().set("type", "multi_tenant")), WorkloadError);
  // trace: needs a file, rejects instances (use load_factor), checks knobs.
  EXPECT_THROW(build_workload(sim, obj().set("type", "trace")), WorkloadError);
  EXPECT_THROW(build_workload(sim, obj().set("type", "trace").set("file", "/nonexistent.jsonl")),
               WorkloadError);
  util::Json trace = obj().set("type", "trace").set("file", "x.jsonl");
  EXPECT_THROW(build_workload(sim, trace.set("instances", 2)), WorkloadError);
  trace = obj().set("type", "trace").set("file", "x.jsonl");
  EXPECT_THROW(build_workload(sim, trace.set("time_scale", 0.0)), WorkloadError);
  trace = obj().set("type", "trace").set("file", "x.jsonl");
  EXPECT_THROW(build_workload(sim, trace.set("load_factor", 0)), WorkloadError);
  trace = obj().set("type", "trace").set("file", "x.jsonl");
  EXPECT_THROW(build_workload(sim, trace.set("start", 10.0).set("end", 5.0)), WorkloadError);
}

TEST(Workload, BytesFieldAcceptsNumbersAndUnitStrings) {
  util::Json spec = obj().set("a", 1234.0).set("b", "2 GiB");
  EXPECT_DOUBLE_EQ(util::bytes_field_or(spec, "a", 0.0), 1234.0);
  EXPECT_DOUBLE_EQ(util::bytes_field_or(spec, "b", 0.0), 2.0 * util::GiB);
  EXPECT_DOUBLE_EQ(util::bytes_field_or(spec, "missing", 7.0), 7.0);
}

TEST(Workload, MultiTenantHonorsOuterArrivalAndService) {
  wf::Simulation sim;
  util::Json tenants{util::JsonArray{}};
  tenants.push_back(obj().set("type", "synthetic").set("input_size", "2 GB")
                        .set("arrival", 5.0));
  tenants.push_back(obj().set("type", "nighres").set("service", "own"));
  util::Json spec = obj().set("type", "multi_tenant").set("tenants", tenants)
                        .set("arrival", 100.0).set("service", "shared");
  auto instances = build_workload(sim, spec);
  ASSERT_EQ(instances.size(), 2u);
  EXPECT_EQ(instances[0].arrival, 105.0);  // composition offset + tenant arrival
  EXPECT_EQ(instances[0].service, "shared");
  EXPECT_EQ(instances[1].arrival, 100.0);
  EXPECT_EQ(instances[1].service, "own");  // tenant binding wins

  // instances/stagger on the composition are rejected, not ignored.
  EXPECT_THROW(build_workload(sim, obj().set("type", "multi_tenant").set("tenants", tenants)
                                       .set("instances", 2)),
               WorkloadError);
  EXPECT_THROW(build_workload(sim, obj().set("type", "multi_tenant").set("tenants", tenants)
                                       .set("stagger", 1.0)),
               WorkloadError);
}

}  // namespace
}  // namespace pcs::workload
